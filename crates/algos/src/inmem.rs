//! In-memory skyline algorithms: BNL, SFS and two-way divide & conquer.
//!
//! BNL's and SFS's inner loops run over [`PointBlock`] — a flat
//! structure-of-arrays coordinate buffer — so the dominance-test hot path
//! does no per-point allocation and no pointer chasing.

use skycache_geom::dominance::DomRelation;
use skycache_geom::{dominates, retain_nondominated, Kernel, Point, PointBlock};

use crate::planar::{planar_applicable, planar_skyline_into};

/// Result of an in-memory skyline computation.
#[derive(Clone, Debug)]
pub struct SkylineOutput {
    /// The skyline points. Duplicate coordinate vectors are all kept
    /// (equal points do not dominate one another).
    pub skyline: Vec<Point>,
    /// Number of pairwise dominance tests performed.
    pub dominance_tests: u64,
}

/// Reusable buffer for the block-native skyline entry points
/// ([`SkylineAlgorithm::compute_block`]): one `(score, row)` slot per
/// input row, kept across queries so steady-state computation does not
/// allocate.
#[derive(Clone, Debug, Default)]
pub struct SkylineScratch {
    /// `(monotone score, row index)` pairs, sorted before filtering.
    pub(crate) order: Vec<(f64, u32)>,
    /// Secondary `(score, row index)` buffer: the planar sweep's
    /// survivor list, re-sorted into canonical output order.
    pub(crate) aux: Vec<(f64, u32)>,
}

impl SkylineScratch {
    /// An empty scratch; buffers grow to their high-water marks in use.
    pub fn new() -> Self {
        SkylineScratch::default()
    }
}

/// A pluggable in-memory skyline routine.
///
/// CBCS's benefit is orthogonal to this choice (paper, Section 7): the
/// engine accepts any implementor.
pub trait SkylineAlgorithm: Send + Sync {
    /// Short identifier used in benchmark output.
    fn name(&self) -> &'static str;

    /// Computes the skyline of `points` (minimization in all dimensions).
    fn compute(&self, points: Vec<Point>) -> SkylineOutput;

    /// Block-native variant: computes the skyline of the row-major
    /// coordinate block `rows` (`dims` columns per row) into `out`,
    /// returning `Some(dominance_tests)` — or `None` when the
    /// implementation has no block path, in which case the caller
    /// materializes [`Point`]s and falls back to
    /// [`SkylineAlgorithm::compute`]. Implementations must fill `out` in
    /// exactly the order `compute` would return, so the two paths are
    /// interchangeable row for row.
    fn compute_block(
        &self,
        _rows: &[f64],
        _dims: usize,
        _scratch: &mut SkylineScratch,
        _out: &mut PointBlock,
    ) -> Option<u64> {
        None
    }
}

/// Block-Nested-Loops (Börzsönyi et al., ICDE 2001), unbounded-window
/// variant: each point is compared against the current window; dominated
/// window entries are evicted.
#[derive(Clone, Copy, Debug, Default)]
pub struct Bnl;

impl SkylineAlgorithm for Bnl {
    fn name(&self) -> &'static str {
        "BNL"
    }

    fn compute(&self, points: Vec<Point>) -> SkylineOutput {
        let Ok(input) = PointBlock::from_points(&points) else {
            return SkylineOutput { skyline: Vec::new(), dominance_tests: 0 };
        };
        // skylint: allow(no-panic-paths) — input.dims() >= 1 by PointBlock construction.
        let mut window = PointBlock::new(input.dims()).expect("dims > 0");
        let kernel = Kernel::for_dims(input.dims());
        let mut tests = 0u64;
        'next_point: for row in input.rows() {
            let mut i = 0;
            while i < window.len() {
                tests += 1;
                match kernel.compare(window.row(i), row) {
                    DomRelation::Dominates => continue 'next_point,
                    DomRelation::DominatedBy => {
                        window.swap_remove(i);
                    }
                    DomRelation::Equal | DomRelation::Incomparable => i += 1,
                }
            }
            window.push_row(row);
        }
        SkylineOutput { skyline: window.to_points(), dominance_tests: tests }
    }
}

/// Sort-Filter Skyline (Chomicki, Godfrey, Gryz & Liang): presort by a
/// monotone score so that no point can dominate an earlier one, then a
/// single filter pass against the growing skyline (no evictions needed).
#[derive(Clone, Copy, Debug, Default)]
pub struct Sfs;

impl Sfs {
    /// Block-native SFS: dispatches `dims == 2` inputs to the planar
    /// monotone sweep ([`crate::planar::planar_skyline_into`], which
    /// needs no pairwise dominance tests at all) and everything else to
    /// the classic sum-sorted filter ([`Sfs::classic_block_into`]). Both
    /// paths emit SFS canonical order, so the dispatch is invisible to
    /// callers except in speed and in the `dominance_tests` count (0 on
    /// the planar path).
    pub fn compute_block_into(
        &self,
        rows: &[f64],
        dims: usize,
        scratch: &mut SkylineScratch,
        out: &mut PointBlock,
    ) -> u64 {
        if planar_applicable(dims) {
            return planar_skyline_into(rows, scratch, out);
        }
        self.classic_block_into(rows, dims, scratch, out)
    }

    /// The classic sum-sorted filter: sorts row indices by coordinate
    /// sum and filters each row, in score order, against the growing
    /// skyline block under the active [`Kernel`] generation.
    /// Allocation-free once `scratch` and `out` have warmed up.
    ///
    /// The index sort is *stable*, so rows with equal sums keep their
    /// input order — exactly what the `Vec<Point>` sort in
    /// [`SkylineAlgorithm::compute`] does — and the two entry points emit
    /// identical output orders and dominance-test counts. Public so the
    /// differential tests can compare the planar sweep against it at
    /// `dims == 2` without hitting their own dispatch.
    pub fn classic_block_into(
        &self,
        rows: &[f64],
        dims: usize,
        scratch: &mut SkylineScratch,
        out: &mut PointBlock,
    ) -> u64 {
        debug_assert!(dims > 0 && rows.len().is_multiple_of(dims));
        debug_assert_eq!(out.dims(), dims);
        out.clear();
        // The entropy score is monotone w.r.t. dominance for the
        // non-negative data of the benchmarks; the coordinate sum is
        // monotone in general. Use the sum: s ≺ t ⇒ sum(s) < sum(t),
        // so after sorting ascending no point dominates a predecessor.
        let n = rows.len() / dims;
        scratch.order.clear();
        for i in 0..n {
            let sum: f64 = rows[i * dims..(i + 1) * dims].iter().sum();
            scratch.order.push((sum, i as u32));
        }
        scratch.order.sort_by(|a, b| a.0.total_cmp(&b.0));
        let kernel = Kernel::for_dims(dims);
        let mut tests = 0u64;
        for &(_, i) in &scratch.order {
            let row = &rows[i as usize * dims..(i as usize + 1) * dims];
            let mut dominated = false;
            for s in out.rows() {
                tests += 1;
                if kernel.dominates(s, row) {
                    dominated = true;
                    break;
                }
            }
            if !dominated {
                out.push_row(row);
            }
        }
        tests
    }
}

impl SkylineAlgorithm for Sfs {
    fn name(&self) -> &'static str {
        "SFS"
    }

    fn compute(&self, points: Vec<Point>) -> SkylineOutput {
        let Ok(input) = PointBlock::from_points(&points) else {
            return SkylineOutput { skyline: Vec::new(), dominance_tests: 0 };
        };
        let mut scratch = SkylineScratch::new();
        // skylint: allow(no-panic-paths) — input.dims() >= 1 by PointBlock construction.
        let mut skyline = PointBlock::new(input.dims()).expect("dims > 0");
        let tests =
            self.compute_block_into(input.as_flat(), input.dims(), &mut scratch, &mut skyline);
        SkylineOutput { skyline: skyline.to_points(), dominance_tests: tests }
    }

    fn compute_block(
        &self,
        rows: &[f64],
        dims: usize,
        scratch: &mut SkylineScratch,
        out: &mut PointBlock,
    ) -> Option<u64> {
        Some(self.compute_block_into(rows, dims, scratch, out))
    }
}

/// Two-way divide & conquer (Börzsönyi et al.): split at the median of the
/// first dimension, solve the halves recursively, and merge by filtering
/// the union of the partial skylines.
#[derive(Clone, Copy, Debug, Default)]
pub struct DivideConquer;

/// Below this size recursion falls back to BNL.
const DC_CUTOFF: usize = 64;

impl SkylineAlgorithm for DivideConquer {
    fn name(&self) -> &'static str {
        "D&C"
    }

    fn compute(&self, points: Vec<Point>) -> SkylineOutput {
        let mut tests = 0u64;
        let skyline = dc(points, 0, &mut tests);
        SkylineOutput { skyline, dominance_tests: tests }
    }
}

fn dc(mut points: Vec<Point>, depth: usize, tests: &mut u64) -> Vec<Point> {
    if points.len() <= DC_CUTOFF || depth > 40 {
        // Leaf: block cross-filter. A point survives iff no input point
        // strictly dominates it — self-comparison is harmless (strict
        // dominance is irreflexive), so candidate and window can hold
        // the same rows.
        return block_cross_filter(&points, tests);
    }
    let dim = depth % points[0].dims();
    // Median split on `dim`.
    let mid = points.len() / 2;
    points.select_nth_unstable_by(mid, |a, b| a[dim].total_cmp(&b[dim]));
    let upper = points.split_off(mid);
    let mut lower_sky = dc(points, depth + 1, tests);
    let upper_sky = dc(upper, depth + 1, tests);

    // Merge: lower-half skyline points may dominate upper-half ones (and,
    // on ties at the split value, vice versa) — cross-filter the union.
    let merged: Vec<Point> = lower_sky.drain(..).chain(upper_sky).collect();
    block_cross_filter(&merged, tests)
}

/// Skyline of `points` by one [`retain_nondominated`] pass of the rows
/// against themselves, under the kernel generation selected for the
/// block's dimensionality. This is the
/// D&C leaf/merge kernel: inputs here are small (≤ [`DC_CUTOFF`] at the
/// leaves, unions of two partial skylines at the merges), so the flat
/// block pass beats BNL's window churn despite doing the full O(k²) scan.
fn block_cross_filter(points: &[Point], tests: &mut u64) -> Vec<Point> {
    let Ok(mut candidates) = PointBlock::from_points(points) else {
        return Vec::new();
    };
    let window = candidates.clone();
    let kernel = Kernel::for_dims(window.dims());
    let stats = retain_nondominated(&mut candidates, &window, kernel);
    *tests += stats.dominance_tests;
    candidates.to_points()
}

/// SaLSa — Sort and Limit Skyline algorithm (Bartolini, Ciaccia & Patella):
/// presort by the *minimum coordinate* and keep the smallest maximum
/// coordinate seen among skyline points as a stop line. Once every
/// remaining point's minimum coordinate exceeds that stop line, some
/// skyline point dominates all of them and the scan terminates early —
/// SFS, by contrast, must always scan its entire input.
#[derive(Clone, Copy, Debug, Default)]
pub struct Salsa;

impl SkylineAlgorithm for Salsa {
    fn name(&self) -> &'static str {
        "SaLSa"
    }

    fn compute(&self, mut points: Vec<Point>) -> SkylineOutput {
        let min_coord =
            |p: &Point| -> f64 { p.coords().iter().copied().fold(f64::INFINITY, f64::min) };
        let max_coord =
            |p: &Point| -> f64 { p.coords().iter().copied().fold(f64::NEG_INFINITY, f64::max) };
        // Sort by (minC, sum): minC ordering enables the stop test; the
        // sum tie-break keeps the order monotone w.r.t. dominance (a
        // dominator cannot sort after a point it dominates: its minC and
        // its sum are both <=, with the sum strictly smaller).
        points.sort_by(|a, b| {
            min_coord(a)
                .total_cmp(&min_coord(b))
                .then_with(|| a.coord_sum().total_cmp(&b.coord_sum()))
        });

        let mut skyline: Vec<Point> = Vec::new();
        let mut tests = 0u64;
        let mut stop = f64::INFINITY; // min over skyline of max coordinate
        for p in points {
            if min_coord(&p) > stop {
                // Every later point q has minC(q) >= minC(p) > stop, so
                // the stop-line point strictly dominates them all.
                break;
            }
            let mut dominated = false;
            for s in &skyline {
                tests += 1;
                if dominates(s, &p) {
                    dominated = true;
                    break;
                }
            }
            if !dominated {
                stop = stop.min(max_coord(&p));
                skyline.push(p);
            }
        }
        SkylineOutput { skyline, dominance_tests: tests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{naive_skyline, sorted};

    fn algos() -> Vec<Box<dyn SkylineAlgorithm>> {
        vec![
            Box::new(Bnl),
            Box::new(Sfs),
            Box::new(DivideConquer),
            Box::new(Salsa),
            // Forced thread count + tiny threshold so the scoped-thread
            // path is exercised even on single-core hosts.
            Box::new(crate::ParallelDc { threads: 4, sequential_threshold: 32 }),
        ]
    }

    fn p(c: &[f64]) -> Point {
        Point::from(c.to_vec())
    }

    fn pseudo_random_points(n: usize, dims: usize, seed: u64) -> Vec<Point> {
        // Small xorshift so this module needs no external RNG.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::from((0..dims).map(|_| next()).collect::<Vec<_>>())).collect()
    }

    #[test]
    fn all_algorithms_agree_with_naive() {
        let pts = pseudo_random_points(400, 4, 42);
        let want = sorted(naive_skyline(&pts));
        for algo in algos() {
            let got = sorted(algo.compute(pts.clone()).skyline);
            assert_eq!(got, want, "{} diverges from naive", algo.name());
        }
    }

    #[test]
    fn empty_and_single() {
        for algo in algos() {
            assert!(algo.compute(vec![]).skyline.is_empty(), "{}", algo.name());
            let one = algo.compute(vec![p(&[1.0, 2.0])]).skyline;
            assert_eq!(one, vec![p(&[1.0, 2.0])], "{}", algo.name());
        }
    }

    #[test]
    fn duplicates_are_all_kept() {
        let pts = vec![p(&[1.0, 1.0]), p(&[1.0, 1.0]), p(&[2.0, 2.0])];
        for algo in algos() {
            let sky = algo.compute(pts.clone()).skyline;
            assert_eq!(sky.len(), 2, "{}: duplicates of a skyline point stay", algo.name());
            assert!(sky.iter().all(|s| *s == p(&[1.0, 1.0])));
        }
    }

    #[test]
    fn totally_ordered_chain_yields_minimum() {
        let pts: Vec<Point> = (0..50).map(|i| p(&[i as f64, i as f64])).collect();
        for algo in algos() {
            let sky = algo.compute(pts.clone()).skyline;
            assert_eq!(sky, vec![p(&[0.0, 0.0])], "{}", algo.name());
        }
    }

    #[test]
    fn anti_chain_is_fully_kept() {
        let pts: Vec<Point> = (0..50).map(|i| p(&[i as f64, (49 - i) as f64])).collect();
        for algo in algos() {
            let sky = algo.compute(pts.clone()).skyline;
            assert_eq!(sky.len(), 50, "{}", algo.name());
        }
    }

    /// The block-native SFS entry point must be indistinguishable from
    /// the `Vec<Point>` one: same rows, same order, same test count.
    #[test]
    fn sfs_block_path_matches_compute_exactly() {
        let pts = pseudo_random_points(300, 3, 21);
        let want = Sfs.compute(pts.clone());
        let input = PointBlock::from_points(&pts).unwrap();
        let mut scratch = SkylineScratch::new();
        let mut out = PointBlock::new(3).unwrap();
        let tests = Sfs
            .compute_block(input.as_flat(), 3, &mut scratch, &mut out)
            .expect("SFS has a block path");
        assert_eq!(tests, want.dominance_tests);
        assert_eq!(out.to_points(), want.skyline, "same rows in the same order");

        // Reusing the scratch and output block stays correct.
        let pts2 = pseudo_random_points(150, 3, 22);
        let want2 = Sfs.compute(pts2.clone());
        let input2 = PointBlock::from_points(&pts2).unwrap();
        let tests2 = Sfs.compute_block(input2.as_flat(), 3, &mut scratch, &mut out).unwrap();
        assert_eq!(tests2, want2.dominance_tests);
        assert_eq!(out.to_points(), want2.skyline);

        // Algorithms without a block path opt out with None.
        assert!(Bnl.compute_block(input.as_flat(), 3, &mut scratch, &mut out).is_none());
    }

    #[test]
    fn sfs_does_fewer_tests_than_bnl_on_sorted_friendly_data() {
        // On a dominance chain SFS needs one test per point; BNL's window
        // churn costs at least as much.
        let pts: Vec<Point> = (0..2000).map(|i| p(&[i as f64, i as f64, i as f64])).collect();
        let sfs = Sfs.compute(pts.clone());
        let bnl = Bnl.compute(pts);
        assert!(sfs.dominance_tests <= bnl.dominance_tests);
        assert_eq!(sfs.skyline.len(), 1);
    }

    #[test]
    fn salsa_terminates_early_on_correlated_data() {
        // A strong dominator near the origin lets SaLSa stop after a few
        // points, while SFS scans everything.
        let mut pts: Vec<Point> = (1..2_000)
            .map(|i| {
                let v = 0.5 + i as f64 / 2_000.0;
                p(&[v, v + 0.01, v + 0.02])
            })
            .collect();
        pts.push(p(&[0.1, 0.1, 0.1]));
        let salsa = Salsa.compute(pts.clone());
        let sfs = Sfs.compute(pts);
        assert_eq!(crate::testutil::sorted(salsa.skyline), crate::testutil::sorted(sfs.skyline));
        assert!(
            salsa.dominance_tests * 10 < sfs.dominance_tests,
            "SaLSa {} vs SFS {}",
            salsa.dominance_tests,
            sfs.dominance_tests
        );
    }

    #[test]
    fn output_is_a_subset_and_undominated() {
        let pts = pseudo_random_points(300, 3, 7);
        for algo in algos() {
            let sky = algo.compute(pts.clone()).skyline;
            for s in &sky {
                assert!(pts.contains(s), "{}: fabricated point", algo.name());
                assert!(
                    !pts.iter().any(|t| skycache_geom::dominates(t, s)),
                    "{}: dominated point in skyline",
                    algo.name()
                );
            }
            // Completeness: every undominated input point appears.
            let want = naive_skyline(&pts);
            assert_eq!(sky.len(), want.len(), "{}", algo.name());
        }
    }
}
