//! Planar (d = 2) skyline by a single monotone sweep.
//!
//! For two dimensions the skyline needs no pairwise dominance testing at
//! all ("Optimal Planar Range Skyline Reporting", Tao et al.): sort the
//! points by `(x, y)` ascending and sweep once, keeping the running
//! minimum of `y`. A point is dominated iff some point with strictly
//! smaller `x` has `y ≤` its own, or a point with equal `x` has strictly
//! smaller `y` — both reduce to comparisons against the sweep state, so
//! the whole computation is one sort plus one linear pass: O(n log n)
//! worst case, O(n) beyond the sort, and O(n) end to end when the input
//! arrives presorted by `x` (as index-ordered range output does).
//!
//! The survivors are then re-emitted in **SFS canonical order**
//! (ascending coordinate sum, ties in input order) so this routine is a
//! drop-in replacement for the block-native SFS filter: callers caching
//! the result plan the same follow-up regions whichever path computed it.
//! [`crate::Sfs`] dispatches here automatically when `dims == 2`; the
//! engine's merge and MPR remainder-merge inherit the fast path through
//! that dispatch.

use skycache_geom::PointBlock;

use crate::SkylineScratch;

/// Dimensionality handled by the planar sweep.
pub const PLANAR_DIMS: usize = 2;

/// Whether the planar fast path applies to `dims`-dimensional data.
#[inline]
pub fn planar_applicable(dims: usize) -> bool {
    dims == PLANAR_DIMS
}

/// Computes the d = 2 skyline of the row-major coordinate block `rows`
/// into `out`, in SFS canonical order (ascending coordinate sum, stable
/// by input index). Keep-duplicates semantics: equal points never
/// dominate each other, so every copy of a skyline point survives.
///
/// Returns the number of pairwise dominance tests performed — always 0:
/// the sweep decides each point against scalar sweep state instead of
/// against other points.
pub fn planar_skyline_into(
    rows: &[f64],
    scratch: &mut SkylineScratch,
    out: &mut PointBlock,
) -> u64 {
    debug_assert!(rows.len().is_multiple_of(PLANAR_DIMS));
    debug_assert_eq!(out.dims(), PLANAR_DIMS);
    out.clear();
    let n = rows.len() / PLANAR_DIMS;

    // Sort indices by (x, y) ascending; sort_by is stable, so equal
    // points keep their input order. Keys are normalized with `+ 0.0`
    // (mapping -0.0 to +0.0, a no-op for every other value — inputs are
    // NaN-free by Point construction) so that total_cmp's bit-level
    // -0.0 < +0.0 refinement cannot split one *numeric* x-group into two
    // runs, which would break the sweep's "first group element has
    // minimal y" invariant.
    scratch.order.clear();
    for i in 0..n {
        scratch.order.push((rows[i * PLANAR_DIMS] + 0.0, i as u32));
    }
    scratch.order.sort_by(|a, b| {
        a.0.total_cmp(&b.0).then_with(|| {
            let ya = rows[a.1 as usize * PLANAR_DIMS + 1] + 0.0;
            let yb = rows[b.1 as usize * PLANAR_DIMS + 1] + 0.0;
            ya.total_cmp(&yb)
        })
    });

    // Sweep. `best_strict` is the minimum y among points with x strictly
    // smaller than the current group's x; `group_min_y` the minimum y of
    // the current equal-x group (its first element, since each group is
    // y-sorted). A point survives iff its y equals its group minimum
    // (`y <= group_min_y`, as y >= group_min_y holds by the sort) and
    // that minimum undercuts every strictly-smaller-x point
    // (`y < best_strict`).
    scratch.aux.clear();
    let mut best_strict = f64::INFINITY;
    let mut group_x = f64::NAN;
    let mut group_min_y = f64::INFINITY;
    let mut first = true;
    for &(x, i) in &scratch.order {
        let y = rows[i as usize * PLANAR_DIMS + 1];
        if first || x > group_x {
            best_strict = best_strict.min(group_min_y);
            group_x = x;
            group_min_y = y;
            first = false;
        }
        if y <= group_min_y && y < best_strict {
            // The emit key must fold exactly like the classic filter's
            // `iter().sum()` (which starts from +0.0): `x + y` alone would
            // give -0.0 for all-negative-zero rows where the fold gives
            // +0.0, and total_cmp orders the two bit patterns apart.
            let sum: f64 =
                rows[i as usize * PLANAR_DIMS..(i as usize + 1) * PLANAR_DIMS].iter().sum();
            scratch.aux.push((sum, i));
        }
    }

    // Re-emit survivors in SFS canonical order: ascending coordinate
    // sum, ties by input index — exactly what SFS's stable sum-sort
    // produces for the surviving subset.
    scratch.aux.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    for &(_, i) in &scratch.aux {
        out.push_row(&rows[i as usize * PLANAR_DIMS..(i as usize + 1) * PLANAR_DIMS]);
    }
    0
}

#[cfg(test)]
mod tests {
    use skycache_geom::Point;

    use super::*;
    use crate::testutil::{naive_skyline, sorted};
    use crate::Sfs;

    fn sweep(points: &[Point]) -> Vec<Point> {
        let rows: Vec<f64> = points.iter().flat_map(|p| p.coords().to_vec()).collect();
        let mut scratch = SkylineScratch::new();
        let mut out = PointBlock::new(2).unwrap();
        planar_skyline_into(&rows, &mut scratch, &mut out);
        out.to_points()
    }

    fn pseudo_random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::from(vec![next(), next()])).collect()
    }

    #[test]
    fn applicability_is_exactly_two_dims() {
        assert!(!planar_applicable(1));
        assert!(planar_applicable(2));
        assert!(!planar_applicable(3));
    }

    /// The sweep must match the classic SFS filter row for row — same
    /// points, same (canonical) order.
    #[test]
    fn matches_classic_sfs_order_on_random_data() {
        for seed in [3, 17, 99] {
            let pts = pseudo_random_points(300, seed);
            let rows: Vec<f64> = pts.iter().flat_map(|p| p.coords().to_vec()).collect();
            let mut scratch = SkylineScratch::new();
            let mut want = PointBlock::new(2).unwrap();
            Sfs.classic_block_into(&rows, 2, &mut scratch, &mut want);
            assert_eq!(sweep(&pts), want.to_points(), "seed {seed}");
        }
    }

    #[test]
    fn presorted_input_matches_too() {
        let mut pts = pseudo_random_points(200, 7);
        pts.sort_by(|a, b| a[0].total_cmp(&b[0]));
        let want = sorted(naive_skyline(&pts));
        assert_eq!(sorted(sweep(&pts)), want);
    }

    #[test]
    fn duplicates_equal_x_and_chains() {
        // Duplicates of a skyline point all survive.
        let dup = vec![
            Point::from(vec![0.0, 1.0]),
            Point::from(vec![0.0, 1.0]),
            Point::from(vec![1.0, 2.0]),
        ];
        assert_eq!(sweep(&dup).len(), 2);

        // Equal x: only the minimal-y points survive.
        let same_x = vec![
            Point::from(vec![1.0, 3.0]),
            Point::from(vec![1.0, 2.0]),
            Point::from(vec![1.0, 2.0]),
        ];
        assert_eq!(sweep(&same_x), vec![Point::from(vec![1.0, 2.0]); 2]);

        // A dominance chain collapses to its minimum.
        let chain: Vec<Point> =
            (0..50).map(|i| Point::from(vec![f64::from(i), f64::from(i)])).collect();
        assert_eq!(sweep(&chain), vec![Point::from(vec![0.0, 0.0])]);

        // An anti-chain survives whole.
        let anti: Vec<Point> =
            (0..50).map(|i| Point::from(vec![f64::from(i), f64::from(49 - i)])).collect();
        assert_eq!(sweep(&anti).len(), 50);

        // Same-x tie with the strict-x minimum: (2,1) is dominated by
        // (1,1) (strict on x), and (2,0) survives below it.
        let tie = vec![
            Point::from(vec![1.0, 1.0]),
            Point::from(vec![2.0, 1.0]),
            Point::from(vec![2.0, 0.0]),
        ];
        assert_eq!(
            sorted(sweep(&tie)),
            sorted(vec![Point::from(vec![1.0, 1.0]), Point::from(vec![2.0, 0.0])])
        );
    }

    /// -0.0 and +0.0 are one numeric x-group: the sort key normalization
    /// keeps the group contiguous so a later +0.0 row with smaller y is
    /// still seen as the group minimum (regression: total_cmp used to
    /// split the group and leak a dominated point through `best_strict`).
    #[test]
    fn signed_zero_x_is_one_group() {
        let pts = vec![
            Point::from(vec![-0.0, -1.25]),
            Point::from(vec![0.0, -1.75]),
            Point::from(vec![0.75, -1.5]),
        ];
        // (0.0, -1.75) dominates both others (x numerically equal or
        // smaller, y strictly smaller).
        assert_eq!(sweep(&pts), vec![Point::from(vec![0.0, -1.75])]);
        assert_eq!(sorted(sweep(&pts)), sorted(naive_skyline(&pts)));
    }

    #[test]
    fn empty_and_single() {
        assert!(sweep(&[]).is_empty());
        let one = vec![Point::from(vec![1.0, 2.0])];
        assert_eq!(sweep(&one), one);
    }
}
