//! Branch-and-Bound Skyline (Papadias, Tao, Fu & Seeger, TODS 2005) with
//! constraint-region pruning — the paper's non-caching state of the art.
//!
//! BBS traverses an R-tree best-first by `mindist` (the sum of an entry's
//! lower-corner coordinates) and maintains the skyline found so far.
//! Entries are pruned when they fall outside the constraint region
//! ("pruning paths in an R-Tree if outside the constraints") or when their
//! lower corner is dominated by an existing skyline point — in which case
//! the entire subtree is dominated. With mindist ordering, every leaf
//! entry that survives both checks when popped is a skyline point, which
//! makes the traversal I/O-optimal.

use skycache_geom::{Aabb, Constraints, Kernel, Point};
use skycache_rtree::{BestFirst, Popped, RStarTree};

/// Work counters of one BBS run.
///
/// `node_accesses` is BBS's I/O currency: each expanded R-tree node is one
/// page read in the paper's accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BbsStats {
    /// R-tree nodes expanded (page reads).
    pub node_accesses: u64,
    /// Entries popped from the priority queue.
    pub entries_popped: u64,
    /// Pairwise dominance tests against the accumulating skyline.
    pub dominance_tests: u64,
    /// Largest frontier (heap) size observed.
    pub peak_heap: usize,
}

/// Result of a BBS run.
#[derive(Clone, Debug)]
pub struct BbsOutput {
    /// The constrained skyline.
    pub skyline: Vec<Point>,
    /// Work counters.
    pub stats: BbsStats,
}

/// Computes the constrained skyline `Sky(S, C)` of the points stored in
/// `tree` (as degenerate boxes).
///
/// # Panics
/// Panics if tree and constraints dimensionality differ.
pub fn bbs_constrained<T>(tree: &RStarTree<T>, c: &Constraints) -> BbsOutput {
    assert_eq!(tree.dims(), c.dims(), "tree/constraints dimensionality mismatch");
    let region = c.aabb().clone();
    let mut skyline: Vec<Point> = Vec::new();
    let mut stats = BbsStats::default();

    // mindist: L1 norm of the lower corner. Any point in a box has a
    // coordinate sum >= the box's mindist, so pops are in non-decreasing
    // potential-dominator order.
    let mut bf = BestFirst::new(tree, |mbr: &Aabb| mbr.lo().iter().sum());

    while let Some((_, popped)) = bf.pop() {
        stats.entries_popped += 1;
        match popped {
            Popped::Node(node, mbr) => {
                if !mbr.intersects(&region) || corner_dominated(&mbr, &skyline, &mut stats) {
                    continue; // prune the whole subtree
                }
                stats.node_accesses += 1;
                bf.expand(node, |child| child.intersects(&region));
                stats.peak_heap = stats.peak_heap.max(bf.frontier_len());
            }
            Popped::Item(mbr, _) => {
                let p = Point::new_unchecked(mbr.lo().to_vec());
                if !c.satisfies(&p) {
                    continue;
                }
                if corner_dominated(mbr, &skyline, &mut stats) {
                    continue;
                }
                skyline.push(p);
            }
        }
    }
    BbsOutput { skyline, stats }
}

/// Whether some skyline point strictly dominates the box's lower corner —
/// the sound subtree-pruning test (if `s ≺ lo` then `s` dominates every
/// point of the box).
fn corner_dominated(mbr: &Aabb, skyline: &[Point], stats: &mut BbsStats) -> bool {
    let corner = mbr.lo();
    let kernel = Kernel::for_dims(corner.len());
    for s in skyline {
        stats.dominance_tests += 1;
        if kernel.dominates(s.coords(), corner) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inmem::{Sfs, SkylineAlgorithm};
    use crate::testutil::sorted;
    use skycache_rtree::RTreeParams;

    fn pseudo_points(n: usize, dims: usize, seed: u64) -> Vec<Point> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::from((0..dims).map(|_| next()).collect::<Vec<_>>())).collect()
    }

    fn tree_of(points: &[Point]) -> RStarTree<usize> {
        RStarTree::bulk_load_points(points.iter().cloned().zip(0..), RTreeParams::default())
    }

    fn reference(points: &[Point], c: &Constraints) -> Vec<Point> {
        let constrained: Vec<Point> = points.iter().filter(|p| c.satisfies(p)).cloned().collect();
        Sfs.compute(constrained).skyline
    }

    #[test]
    fn bbs_matches_filter_then_skyline() {
        let points = pseudo_points(1_000, 3, 5);
        let tree = tree_of(&points);
        for (lo, hi) in [(0.1, 0.9), (0.2, 0.5), (0.0, 1.0), (0.45, 0.55)] {
            let c = Constraints::from_pairs(&[(lo, hi); 3]).unwrap();
            let got = sorted(bbs_constrained(&tree, &c).skyline);
            let want = sorted(reference(&points, &c));
            assert_eq!(got, want, "constraints [{lo},{hi}]^3");
        }
    }

    #[test]
    fn bbs_unconstrained_equals_plain_skyline() {
        let points = pseudo_points(500, 2, 9);
        let tree = tree_of(&points);
        let c = Constraints::unbounded(2).unwrap();
        let got = sorted(bbs_constrained(&tree, &c).skyline);
        let want = sorted(Sfs.compute(points).skyline);
        assert_eq!(got, want);
    }

    #[test]
    fn bbs_empty_constraint_region() {
        let points = pseudo_points(200, 2, 3);
        let tree = tree_of(&points);
        let c = Constraints::from_pairs(&[(2.0, 3.0), (2.0, 3.0)]).unwrap();
        let out = bbs_constrained(&tree, &c);
        assert!(out.skyline.is_empty());
        // Root is rejected immediately: no node accesses.
        assert_eq!(out.stats.node_accesses, 0);
    }

    #[test]
    fn bbs_prunes_dominated_subtrees() {
        // With one point at the origin, the rest of the unit cube is
        // dominated: BBS must expand far fewer nodes than the tree holds.
        let mut points = pseudo_points(2_000, 2, 11);
        points.push(Point::from(vec![0.0, 0.0]));
        let tree = tree_of(&points);
        let c = Constraints::unbounded(2).unwrap();
        let out = bbs_constrained(&tree, &c);
        assert_eq!(out.skyline, vec![Point::from(vec![0.0, 0.0])]);
        let total_nodes = 2_001usize.div_ceil(16); // lower bound on leaves
        assert!(
            (out.stats.node_accesses as usize) < total_nodes,
            "expected pruning: {} accesses",
            out.stats.node_accesses
        );
    }

    #[test]
    fn bbs_stats_populated() {
        let points = pseudo_points(300, 3, 17);
        let tree = tree_of(&points);
        let c = Constraints::from_pairs(&[(0.0, 0.8); 3]).unwrap();
        let out = bbs_constrained(&tree, &c);
        assert!(out.stats.entries_popped > 0);
        assert!(out.stats.node_accesses > 0);
        assert!(out.stats.peak_heap > 0);
    }

    #[test]
    fn bbs_on_empty_tree() {
        let tree: RStarTree<usize> = RStarTree::new(2);
        let c = Constraints::unbounded(2).unwrap();
        let out = bbs_constrained(&tree, &c);
        assert!(out.skyline.is_empty());
        assert_eq!(out.stats, BbsStats::default());
    }
}
