//! Allocation-count regression tests for the block-oriented hot path.
//!
//! This crate installs a counting global allocator (see
//! `skycache_bench::allocations`), so allocation events here are exact
//! and deterministic: the workloads are seeded and the engine is
//! single-threaded. Two properties are pinned:
//!
//! 1. allocs/query on the cached steady-state workload (the same
//!    measurement `repro perf` records in BENCH_perf.json, at test
//!    scale) stays under a fixed ceiling, and the block path keeps its
//!    ≥ 5× advantage over the legacy `Vec<Point>` path — reintroducing
//!    a per-point clone anywhere in the fetch → merge → skyline
//!    pipeline costs one alloc per point per stage and blows both
//!    bounds immediately;
//! 2. exact-hit replays (no fetch, no merge) stay under a fixed
//!    ceiling in *both* paths, pinning the residual per-query cost of
//!    answering straight from the cache — result materialization at
//!    the API boundary plus the admission-sketch demand note (exact
//!    hits never re-insert their item; see `Cache::note_demand`).
//!
//! The ceilings are deliberately loose (~2× observed) so unrelated
//! changes don't trip them, while per-point regressions — hundreds of
//! extra allocations per query at this scale — still fail loudly.

use skycache_bench::{allocations, interactive_queries, run_queries, synthetic_table};
use skycache_core::{Cache, CbcsConfig, CbcsExecutor};
use skycache_datagen::Distribution;
use skycache_geom::Constraints;
use skycache_storage::Table;

const DIMS: usize = 4;
const N: usize = 100_000;
const QUERIES: usize = 100;

fn table() -> Table {
    synthetic_table(Distribution::Independent, DIMS, N, 42)
}

/// Allocs/query over one cold-start run of the workload — the cache
/// warms within the first few queries, so this is dominated by the
/// cached steady state, exactly like `repro perf`.
fn workload_allocs_per_query(table: &Table, queries: &[Constraints], block_path: bool) -> f64 {
    let config = CbcsConfig { block_path, ..Default::default() };
    let mut ex = CbcsExecutor::new(table, config);
    let a0 = allocations();
    let records = run_queries(&mut ex, queries);
    let allocs = allocations() - a0;
    let hits = records.iter().filter(|r| r.stats.cache_hit).count();
    assert!(hits * 2 > queries.len(), "workload must be cache-dominated, got {hits} hits");
    allocs as f64 / queries.len() as f64
}

/// Allocs/query when re-running a workload the cache has already
/// answered: every query is an exact hit.
fn replay_allocs_per_query(table: &Table, queries: &[Constraints], block_path: bool) -> f64 {
    let config = CbcsConfig { block_path, ..Default::default() };
    let mut ex = CbcsExecutor::new(table, config);
    run_queries(&mut ex, queries); // warmup: populate cache + scratch
    let a0 = allocations();
    let records = run_queries(&mut ex, queries);
    let allocs = allocations() - a0;
    assert!(records.iter().all(|r| r.stats.cache_hit), "replay must be all cache hits");
    allocs as f64 / queries.len() as f64
}

#[test]
fn steady_state_cached_path_allocs_stay_under_ceiling() {
    let table = table();
    let queries = interactive_queries(&table, QUERIES, 17, None);

    let block = workload_allocs_per_query(&table, &queries, true);
    assert!(
        block <= BLOCK_CEILING,
        "cached block path regressed to {block:.1} allocs/query (ceiling {BLOCK_CEILING})"
    );

    let legacy = workload_allocs_per_query(&table, &queries, false);
    let reduction = legacy / block.max(1e-9);
    assert!(
        reduction >= 5.0,
        "block path lost its allocation advantage: legacy {legacy:.1} vs block {block:.1} \
         per query ({reduction:.1}x, need >= 5x)"
    );
}

#[test]
fn exact_hit_replay_allocs_stay_under_ceiling() {
    let table = table();
    let queries = interactive_queries(&table, QUERIES, 17, None);
    for block_path in [true, false] {
        let replay = replay_allocs_per_query(&table, &queries, block_path);
        assert!(
            replay <= REPLAY_CEILING,
            "exact-hit replay (block_path = {block_path}) regressed to {replay:.1} \
             allocs/query (ceiling {REPLAY_CEILING})"
        );
    }
}

/// The lookup itself — `Cache::lookup_into` with a reused scratch ids
/// vector — must be allocation-free in steady state: the cache-wide
/// bound check, the R*-tree walk, and the cover-order sort all run
/// without touching the allocator once the scratch vector has grown to
/// its working capacity. A single stray `Vec`/`format!` in that path
/// costs ≥ 1 alloc per lookup and trips the near-zero ceiling at once.
#[test]
fn warm_cache_lookup_is_allocation_free() {
    let table = table();
    let queries = interactive_queries(&table, QUERIES, 17, None);
    let sample: Vec<_> = table.all_points().iter().take(8).cloned().collect();

    let mut cache = Cache::new(DIMS);
    for c in queries.iter().take(32) {
        cache.insert(c.clone(), &sample);
    }

    let mut ids: Vec<u64> = Vec::new();
    for c in &queries {
        cache.lookup_into(c, &mut ids); // warm: grow scratch to capacity
    }

    let rounds = 10;
    let a0 = allocations();
    let mut found = 0usize;
    for _ in 0..rounds {
        for c in &queries {
            cache.lookup_into(c, &mut ids);
            found += ids.len();
        }
    }
    let allocs = allocations() - a0;
    let per_lookup = allocs as f64 / (rounds * queries.len()) as f64;
    assert!(found > 0, "lookups must actually surface candidates");
    assert!(
        per_lookup <= LOOKUP_CEILING,
        "warm lookup regressed to {per_lookup:.2} allocs/lookup (ceiling {LOOKUP_CEILING})"
    );
}

/// ~2× the observed steady-state block-path cost (~339 allocs/query).
const BLOCK_CEILING: f64 = 650.0;
/// ~2× the observed exact-hit replay cost (~881 allocs/query — exact
/// hits re-materialize the full result, so this scales with result
/// size, not points read).
const REPLAY_CEILING: f64 = 1800.0;
/// Warm lookups are allocation-free; anything above rounding noise
/// (a fraction of an alloc per lookup amortized over the run) fails.
const LOOKUP_CEILING: f64 = 0.5;
