//! `repro check` — exhaustive schedule exploration of the shared-cache
//! protocol under the skycheck model checker (DESIGN.md §15).
//!
//! Runs the three load-bearing invariants of `core::shared`'s
//! read → compute → write protocol, the two service-layer protocols
//! (singleflight coalescing and epoch publication, DESIGN.md §16) and
//! the kernel-pin publication harness, each explored to exhaustion at
//! preemption bound 2, and writes the per-harness exploration
//! statistics to `BENCH_check.json`
//! (schema `skycheck-bench/1`) so CI can track schedule counts, pruning
//! effectiveness and wall time across commits.
//!
//! The deep assertions live in `crates/core/tests/model.rs`; this pass
//! re-runs the same scenarios for measurement, so a regression that
//! slips past the tests (e.g. a pruning bug exploding the schedule
//! count) still shows up in the benchmark record.

use skycache_core::engine::{CbcsConfig, QueryRequest};
use skycache_core::{Cache, ReplacementPolicy, Service, ServiceConfig, Session};
use skycache_geom::{Constraints, Kernel, Point};
use skycache_storage::{Table, TableConfig};
use skycheck::sync::{thread, Arc, RwLock};
use skycheck::{Explorer, Outcome};

use crate::figures::Scale;

/// Preemption bound every harness is explored at (matches the tests).
const PREEMPTION_BOUND: usize = 2;

/// A named harness: runs one exploration and reports its outcome.
type Harness = (&'static str, fn() -> Outcome);

fn table() -> Table {
    let points: Vec<Point> = (0..3)
        .flat_map(|i| {
            (0..3).map(move |j| Point::from(vec![f64::from(i) / 2.0, f64::from(j) / 2.0]))
        })
        .collect();
    Table::build(points, TableConfig::default()).expect("grid table")
}

/// Service config pinning the raw shared-cache protocol (the service
/// fast paths get their own harnesses below).
fn raw_config(cbcs: CbcsConfig) -> ServiceConfig {
    ServiceConfig { cbcs, coalesce: false, negative_cache: false, ..ServiceConfig::default() }
}

fn run_query(session: &mut Session<'_>, c: &Constraints) -> (Vec<Point>, bool) {
    let r = session.execute(&QueryRequest::new(c.clone())).expect("query").into_result();
    (r.skyline, r.stats.cache_hit)
}

/// Invariant (a): concurrent `touch`/`insert` keep the LRU clock monotone.
fn clock_monotone() -> Outcome {
    let c0 = Constraints::from_pairs(&[(0.0, 0.4), (0.0, 1.0)]).expect("constraints");
    let c1 = Constraints::from_pairs(&[(0.6, 1.0), (0.0, 1.0)]).expect("constraints");
    let pts = vec![Point::from(vec![0.1, 0.1])];
    Explorer::new().with_preemption_bound(PREEMPTION_BOUND).explore(move || {
        let cache = Arc::new(RwLock::new(Cache::with_capacity(2, None, ReplacementPolicy::Lru)));
        let id = cache.write().insert(c0.clone(), &pts).expect("Lru admits below capacity");
        let cache2 = cache.clone();
        let h = thread::spawn(move || cache2.write().touch(id));
        cache.write().insert(c1.clone(), &pts);
        h.join().expect("toucher");
        let g = cache.read();
        let touched = g.get(id).expect("untouched items are never evicted");
        assert_eq!(touched.use_count, 1);
        assert!(touched.last_used > touched.inserted_at);
    })
}

/// Invariant (b): capacity-1 eviction race between two executors' read
/// and write phases never loses a result or double-counts a hit.
fn eviction_race() -> Outcome {
    let t = table();
    let ca = Constraints::from_pairs(&[(0.0, 0.4), (0.0, 1.0)]).expect("constraints");
    let cb = Constraints::from_pairs(&[(0.6, 1.0), (0.0, 1.0)]).expect("constraints");
    let config = CbcsConfig { capacity: Some(1), ..Default::default() };
    Explorer::new().with_preemption_bound(PREEMPTION_BOUND).explore(move || {
        Kernel::set_active(Kernel::Scalar);
        let service = Service::open(&t, raw_config(config.clone()));
        let mut sa = service.session();
        let mut sb = service.session();
        let (got_a, got_b) = thread::scope(|s| {
            let (ca_ref, cb_ref) = (&ca, &cb);
            let ha = s.spawn(move || run_query(&mut sa, ca_ref));
            let hb = s.spawn(move || run_query(&mut sb, cb_ref));
            (ha.join().expect("user a"), hb.join().expect("user b"))
        });
        assert!(!got_a.1 && !got_b.1, "disjoint queries must never count a hit");
        assert_eq!(service.cache().len(), 1);
        service.cache().with_read(|c| assert_eq!(c.evictions(), 1));
    })
}

/// Invariant (c): two full concurrent `execute()` calls admit no AB/BA
/// schedule — no interleaving deadlocks, and hit accounting agrees.
fn no_deadlock() -> Outcome {
    let t = table();
    let c = Constraints::from_pairs(&[(0.0, 0.9), (0.0, 0.9)]).expect("constraints");
    Explorer::new().with_preemption_bound(PREEMPTION_BOUND).explore(move || {
        Kernel::set_active(Kernel::Scalar);
        let service = Service::open(&t, raw_config(CbcsConfig::default()));
        let mut sa = service.session();
        let mut sb = service.session();
        let (got_a, got_b) = thread::scope(|s| {
            let c_ref = &c;
            let ha = s.spawn(move || run_query(&mut sa, c_ref));
            let hb = s.spawn(move || run_query(&mut sb, c_ref));
            (ha.join().expect("user a"), hb.join().expect("user b"))
        });
        let hits = usize::from(got_a.1) + usize::from(got_b.1);
        assert!(hits <= 1, "an empty cache admits at most one hit");
        assert_eq!(service.cache().len(), 2);
    })
}

/// Service invariant (d): two identical concurrent queries through the
/// singleflight table — every join saves exactly one computation and the
/// joiner observes the leader's outcome (deep version: `model_serve.rs`).
fn singleflight() -> Outcome {
    let t = table();
    let c = Constraints::from_pairs(&[(0.0, 0.9), (0.0, 0.9)]).expect("constraints");
    Explorer::new().with_preemption_bound(PREEMPTION_BOUND).explore(move || {
        Kernel::set_active(Kernel::Scalar);
        let config = ServiceConfig { negative_cache: false, ..ServiceConfig::default() };
        let service = Service::open(&t, config);
        let mut sa = service.session();
        let mut sb = service.session();
        let (got_a, got_b) = thread::scope(|s| {
            let c_ref = &c;
            let ha = s.spawn(move || run_query(&mut sa, c_ref));
            let hb = s.spawn(move || run_query(&mut sb, c_ref));
            (ha.join().expect("user a"), hb.join().expect("user b"))
        });
        assert_eq!(got_a.0, got_b.0, "a joiner must observe the winner's outcome");
        let m = service.metrics();
        assert_eq!(m.computes, 2 - m.coalesced, "every join saves exactly one compute");
        assert_eq!(service.cache().len() as u64, m.computes);
    })
}

/// Service invariant (e): epoch publication — a reader interleaved with
/// an inserting writer sees a monotone epoch and only complete
/// snapshots, with publish ordered before the epoch bump.
fn epoch_publish() -> Outcome {
    let t = table();
    let c = Constraints::from_pairs(&[(0.0, 0.9), (0.0, 0.9)]).expect("constraints");
    Explorer::new().with_preemption_bound(PREEMPTION_BOUND).explore(move || {
        Kernel::set_active(Kernel::Scalar);
        let config = ServiceConfig { negative_cache: false, ..ServiceConfig::default() };
        let service = Service::open(&t, config);
        let mut writer = service.session();
        let cache = service.cache().clone();
        let reader = thread::spawn(move || {
            let e1 = cache.epoch();
            let snap = cache.snapshot();
            let e2 = cache.epoch();
            assert!(e2 >= e1, "epoch must be monotone");
            assert!(snap.len() <= 1, "torn snapshot");
            assert!(snap.len() as u64 >= e1, "epoch bumped before snapshot published");
        });
        let r = writer.execute(&QueryRequest::new(c.clone())).expect("writer query");
        assert!(!r.skyline.is_empty());
        reader.join().expect("reader");
        assert_eq!(service.cache().epoch(), 1);
    })
}

/// Satellite pin: a kernel generation published before `spawn` must be
/// observed by the worker in every schedule (release/acquire pair).
fn kernel_pin() -> Outcome {
    Explorer::new().with_preemption_bound(PREEMPTION_BOUND).explore(|| {
        Kernel::set_active(Kernel::Wide);
        let h = thread::spawn(|| Kernel::for_dims(2));
        assert_eq!(h.join().expect("worker"), Kernel::Wide);
        Kernel::reset_to_env();
    })
}

/// `repro check` entry point: runs every harness, prints the exploration
/// table and writes `BENCH_check.json`.
pub fn check(_scale: &Scale) {
    let max_schedules = std::env::var("SKYCHECK_MAX_SCHEDULES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(100_000);
    println!();
    println!(
        "== Model check: shared-cache protocol (preemption bound {PREEMPTION_BOUND}, \
         cap {max_schedules} schedules) =="
    );
    println!(
        "{:<16} {:>10} {:>12} {:>14} {:>9} {:>9}  verdict",
        "harness", "schedules", "pruned-sleep", "pruned-preempt", "depth", "wall-ms"
    );

    let harnesses: [Harness; 6] = [
        ("clock-monotone", clock_monotone),
        ("eviction-race", eviction_race),
        ("no-deadlock", no_deadlock),
        ("singleflight", singleflight),
        ("epoch-publish", epoch_publish),
        ("kernel-pin", kernel_pin),
    ];
    let mut rows = Vec::new();
    let mut all_ok = true;
    for (name, run) in harnesses {
        let outcome = run();
        let s = &outcome.stats;
        let verdict = match (&outcome.failure, outcome.exhausted) {
            (Some(f), _) => {
                all_ok = false;
                format!("FAILED ({:?}, trace {})", f.kind, f.trace)
            }
            (None, true) => "ok (exhausted)".to_owned(),
            (None, false) => {
                all_ok = false;
                "INCONCLUSIVE (schedule cap hit)".to_owned()
            }
        };
        println!(
            "{name:<16} {:>10} {:>12} {:>14} {:>9} {:>9}  {verdict}",
            s.schedules, s.pruned_sleep, s.pruned_preempt, s.max_depth, s.wall_ms
        );
        rows.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"schedules\": {}, \"pruned_sleep\": {}, ",
                "\"pruned_preempt\": {}, \"max_depth\": {}, \"wall_ms\": {}, ",
                "\"exhausted\": {}, \"failed\": {}}}"
            ),
            name,
            s.schedules,
            s.pruned_sleep,
            s.pruned_preempt,
            s.max_depth,
            s.wall_ms,
            outcome.exhausted,
            outcome.failure.is_some(),
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"skycheck-bench/1\",\n",
            "  \"preemption_bound\": {},\n",
            "  \"max_schedules\": {},\n",
            "  \"all_ok\": {},\n",
            "  \"harnesses\": [\n{}\n  ]\n",
            "}}\n"
        ),
        PREEMPTION_BOUND,
        max_schedules,
        all_ok,
        rows.join(",\n"),
    );
    match std::fs::write("BENCH_check.json", &json) {
        Ok(()) => println!("wrote BENCH_check.json"),
        Err(e) => eprintln!("could not write BENCH_check.json: {e}"),
    }
    assert!(all_ok, "model check found a violation — see the table above");
}
