//! One runner per figure of the paper's evaluation (Section 7).
//!
//! Every function prints the same series the paper plots, as text tables.
//! `Scale::default()` shrinks dataset sizes so the full suite completes in
//! minutes; `Scale::full()` restores the paper's sizes (hours, like the
//! original experiments).

use skycache_core::{
    BaselineExecutor, BbsExecutor, CbcsConfig, CbcsExecutor, Executor, MprMode, Overlap,
    QueryRequest, ReplacementPolicy, SearchStrategy,
};
use skycache_datagen::Distribution;
use skycache_geom::Constraints;
use skycache_storage::Table;

use crate::{
    filter_by_case, fmt_size, independent_queries, interactive_queries, print_header, print_row,
    real_estate_table, run_queries, split_by_stability, summarize, synthetic_table, Record,
    Summary,
};

/// Experiment scale knobs.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Dataset sizes for the size-scalability figures (5, 6, 8).
    pub sizes: Vec<usize>,
    /// Dataset size for the dimensionality figure (7).
    pub dim_study_n: usize,
    /// Dimensionalities for Figure 7.
    pub dims_fig7: Vec<usize>,
    /// Dimensionalities for Figure 9 with the exact MPR.
    pub dims_fig9_mpr: Vec<usize>,
    /// Dimensionalities for Figure 9 with the approximate MPR.
    pub dims_fig9_ampr: Vec<usize>,
    /// Dataset size for Figures 10 and 11.
    pub mid_n: usize,
    /// Real-estate dataset size (Figure 12).
    pub real_n: usize,
    /// Interactive workload length.
    pub interactive_queries: usize,
    /// Independent workload length.
    pub independent_queries: usize,
    /// Cache preload size for independent workloads.
    pub preload: usize,
    /// `(cardinality, dims)` cases for the parallel-pipeline experiment.
    pub parallel_cases: Vec<(usize, usize)>,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            sizes: vec![50_000, 100_000, 200_000, 300_000],
            dim_study_n: 100_000,
            dims_fig7: vec![6, 7, 8, 9, 10],
            dims_fig9_mpr: (2..=6).collect(),
            dims_fig9_ampr: (2..=8).collect(),
            mid_n: 200_000,
            real_n: 300_000,
            interactive_queries: 100,
            independent_queries: 100,
            preload: 300,
            parallel_cases: vec![(50_000, 5), (100_000, 5), (100_000, 7)],
        }
    }
}

impl Scale {
    /// The paper's original sizes. Expect multi-hour runtimes, exactly as
    /// the original evaluation did.
    pub fn full() -> Self {
        Scale {
            sizes: vec![1_000_000, 2_000_000, 3_000_000, 4_000_000, 5_000_000],
            dim_study_n: 1_000_000,
            dims_fig7: vec![6, 7, 8, 9, 10],
            dims_fig9_mpr: (2..=7).collect(),
            dims_fig9_ampr: (2..=10).collect(),
            mid_n: 1_000_000,
            real_n: 1_280_000,
            interactive_queries: 500,
            independent_queries: 500,
            preload: 2_000,
            parallel_cases: vec![(500_000, 5), (1_000_000, 5), (1_000_000, 7)],
        }
    }
}

fn ms(s: f64) -> String {
    format!("{:.0}ms", s * 1e3)
}

fn secs(s: f64) -> String {
    format!("{s:.3}s")
}

fn count(v: f64) -> String {
    format!("{v:.0}")
}

fn cbcs_config(mpr: MprMode, strategy: SearchStrategy) -> CbcsConfig {
    CbcsConfig { mpr, strategy, ..Default::default() }
}

/// Runs CBCS over `queries` with the given MPR mode/strategy and an
/// optional warm-up workload (not recorded).
fn run_cbcs(
    table: &Table,
    queries: &[Constraints],
    preload: &[Constraints],
    mpr: MprMode,
    strategy: SearchStrategy,
) -> Vec<Record> {
    let mut ex = CbcsExecutor::new(table, cbcs_config(mpr, strategy));
    for c in preload {
        ex.execute(&QueryRequest::new(c.clone())).expect("preload query succeeds");
    }
    run_queries(&mut ex, queries)
}

fn method_rows(label: &str, records: &[Record]) {
    let all = summarize(records.iter());
    let (stable, unstable) = split_by_stability(records);
    print_row(label, &[secs(all.avg_time_s), count(all.avg_points), count(all.avg_rq)]);
    if !stable.is_empty() {
        let s = summarize(stable.iter().copied());
        print_row(
            &format!("{label} (Stable)"),
            &[secs(s.avg_time_s), count(s.avg_points), count(s.avg_rq)],
        );
    }
    if !unstable.is_empty() {
        let s = summarize(unstable.iter().copied());
        print_row(
            &format!("{label} (Unstable)"),
            &[secs(s.avg_time_s), count(s.avg_points), count(s.avg_rq)],
        );
    }
}

fn size_columns() -> Vec<String> {
    vec!["avg time".into(), "pts read".into(), "range qs".into()]
}

/// Figures 5a–5c: runtime vs dataset size, |D| = 5, interactive
/// exploratory search, for all three distributions (aMPR uses 1 NN as in
/// the paper).
pub fn fig5(scale: &Scale) {
    println!("\n#### Figure 5: scalability with dataset size (|D|=5, interactive) ####");
    for dist in [Distribution::Independent, Distribution::Correlated, Distribution::AntiCorrelated]
    {
        for &n in &scale.sizes {
            let table = synthetic_table(dist, 5, n, 42);
            let queries = interactive_queries(&table, scale.interactive_queries, 17, None);
            print_header(
                &format!("Fig 5 [{}] |S| = {}", dist.label(), fmt_size(n)),
                &size_columns(),
            );

            let mut baseline = BaselineExecutor::new(&table);
            let b = summarize(&run_queries(&mut baseline, &queries));
            print_row("Baseline", &[secs(b.avg_time_s), count(b.avg_points), count(b.avg_rq)]);

            let mut bbs = BbsExecutor::new(&table);
            let s = summarize(&run_queries(&mut bbs, &queries));
            print_row("BBS", &[secs(s.avg_time_s), count(s.avg_points), count(s.avg_rq)]);

            let records = run_cbcs(
                &table,
                &queries,
                &[],
                MprMode::Approximate { k: 1 },
                SearchStrategy::MaxOverlapSP,
            );
            method_rows("aMPR", &records);
        }
    }
}

/// Figure 6: runtime vs dataset size, |D| = 3 independent, with the exact
/// MPR included.
pub fn fig6(scale: &Scale) {
    println!("\n#### Figure 6: scalability with dataset size (|D|=3, independent data, interactive) ####");
    for &n in &scale.sizes {
        let table = synthetic_table(Distribution::Independent, 3, n, 42);
        let queries = interactive_queries(&table, scale.interactive_queries, 17, None);
        print_header(&format!("Fig 6 |S| = {}", fmt_size(n)), &size_columns());

        let mut baseline = BaselineExecutor::new(&table);
        let b = summarize(&run_queries(&mut baseline, &queries));
        print_row("Baseline", &[secs(b.avg_time_s), count(b.avg_points), count(b.avg_rq)]);

        let mut bbs = BbsExecutor::new(&table);
        let s = summarize(&run_queries(&mut bbs, &queries));
        print_row("BBS", &[secs(s.avg_time_s), count(s.avg_points), count(s.avg_rq)]);

        let records = run_cbcs(&table, &queries, &[], MprMode::Exact, SearchStrategy::MaxOverlapSP);
        method_rows("MPR", &records);

        let records = run_cbcs(
            &table,
            &queries,
            &[],
            MprMode::Approximate { k: 1 },
            SearchStrategy::MaxOverlapSP,
        );
        method_rows("aMPR", &records);
    }
}

/// Figure 7: runtime vs dimensionality (|D| in 6..10; only the first 5
/// dimensions are constrained, per the paper's setup).
pub fn fig7(scale: &Scale) {
    println!("\n#### Figure 7: efficiency with increasing dimensionality (|S| = {}, 5 constrained dims) ####",
        fmt_size(scale.dim_study_n));
    for &d in &scale.dims_fig7 {
        let table = synthetic_table(Distribution::Independent, d, scale.dim_study_n, 42);
        let queries = interactive_queries(&table, scale.interactive_queries, 17, Some(5));
        print_header(&format!("Fig 7 |D| = {d}"), &size_columns());

        let mut baseline = BaselineExecutor::new(&table);
        let b = summarize(&run_queries(&mut baseline, &queries));
        print_row("Baseline", &[secs(b.avg_time_s), count(b.avg_points), count(b.avg_rq)]);

        let mut bbs = BbsExecutor::new(&table);
        let s = summarize(&run_queries(&mut bbs, &queries));
        print_row("BBS", &[secs(s.avg_time_s), count(s.avg_points), count(s.avg_rq)]);

        let records = run_cbcs(
            &table,
            &queries,
            &[],
            MprMode::Approximate { k: 1 },
            SearchStrategy::MaxOverlapSP,
        );
        method_rows("aMPR", &records);
    }
}

/// Figures 8a/8b: average points read vs dataset size (|D| = 5 and 3).
pub fn fig8(scale: &Scale) {
    println!("\n#### Figure 8: avg points read from disk (independent data, interactive) ####");
    for (dims, with_mpr) in [(5usize, false), (3usize, true)] {
        for &n in &scale.sizes {
            let table = synthetic_table(Distribution::Independent, dims, n, 42);
            let queries = interactive_queries(&table, scale.interactive_queries, 17, None);
            print_header(
                &format!("Fig 8 |D| = {dims}, |S| = {}", fmt_size(n)),
                &["pts read".into(), "rq issued".into(), "rq executed".into()],
            );

            let mut baseline = BaselineExecutor::new(&table);
            let b = summarize(&run_queries(&mut baseline, &queries));
            print_row(
                "Baseline",
                &[count(b.avg_points), count(b.avg_rq), count(b.avg_rq_executed)],
            );

            if with_mpr {
                let records =
                    run_cbcs(&table, &queries, &[], MprMode::Exact, SearchStrategy::MaxOverlapSP);
                points_rows("MPR", &records);
            }
            let records = run_cbcs(
                &table,
                &queries,
                &[],
                MprMode::Approximate { k: 1 },
                SearchStrategy::MaxOverlapSP,
            );
            points_rows("aMPR", &records);
        }
    }
}

fn points_rows(label: &str, records: &[Record]) {
    let all = summarize(records.iter());
    print_row(label, &[count(all.avg_points), count(all.avg_rq), count(all.avg_rq_executed)]);
    let (stable, unstable) = split_by_stability(records);
    if !stable.is_empty() {
        let s = summarize(stable.iter().copied());
        print_row(
            &format!("{label} (Stable)"),
            &[count(s.avg_points), count(s.avg_rq), count(s.avg_rq_executed)],
        );
    }
    if !unstable.is_empty() {
        let s = summarize(unstable.iter().copied());
        print_row(
            &format!("{label} (Unstable)"),
            &[count(s.avg_points), count(s.avg_rq), count(s.avg_rq_executed)],
        );
    }
}

/// Figures 9a/9b: average number of range queries generated vs
/// dimensionality at |S| = 5k, for the exact MPR and aMPR with
/// 1/3/6/10 nearest neighbors, on both workloads.
pub fn fig9(scale: &Scale) {
    println!("\n#### Figure 9: avg number of range queries generated (|S| = 5k) ####");
    let modes: Vec<(String, MprMode)> = std::iter::once(("MPR".to_owned(), MprMode::Exact))
        .chain(
            [1usize, 3, 6, 10]
                .into_iter()
                .map(|k| (format!("aMPR({k}p)"), MprMode::Approximate { k })),
        )
        .collect();

    for interactive in [true, false] {
        let workload_name = if interactive { "interactive" } else { "independent" };
        let all_dims = &scale.dims_fig9_ampr;
        print_header(
            &format!("Fig 9 ({workload_name})"),
            all_dims.iter().map(|d| format!("|D|={d}")).collect::<Vec<_>>().as_slice(),
        );
        for (label, mode) in &modes {
            let exact = matches!(mode, MprMode::Exact);
            let mut cells = Vec::new();
            for &d in all_dims {
                if exact && !scale.dims_fig9_mpr.contains(&d) {
                    // The paper omits MPR beyond 7D: "just generating the
                    // range queries here took several hours".
                    cells.push("-".to_owned());
                    continue;
                }
                let table = synthetic_table(Distribution::Independent, d, 5_000, 42);
                let records = if interactive {
                    let queries = interactive_queries(&table, 60, 17, None);
                    run_cbcs(&table, &queries, &[], *mode, SearchStrategy::MaxOverlapSP)
                } else {
                    let preload = independent_queries(&table, 60, 5, None);
                    let queries = independent_queries(&table, 30, 19, None);
                    run_cbcs(
                        &table,
                        &queries,
                        &preload,
                        *mode,
                        SearchStrategy::prioritized_nd_std(),
                    )
                };
                // Average over cache hits (query/cache-item pairs).
                let hits = filter_by_case(&records, |_| true);
                let s = summarize(hits.iter().copied());
                cells.push(count(s.avg_rq.max(0.0)));
            }
            print_row(label, &cells);
        }
    }
}

/// Figure 10: average milliseconds per stage (processing / fetching /
/// skyline), |S| scaled from the paper's 1M, |D| = 3 independent.
pub fn fig10(scale: &Scale) {
    println!(
        "\n#### Figure 10: avg ms per stage (independent, |S| = {}, |D| = 3) ####",
        fmt_size(scale.mid_n)
    );
    let table = synthetic_table(Distribution::Independent, 3, scale.mid_n, 42);
    let queries = interactive_queries(&table, scale.interactive_queries, 17, None);
    print_header(
        "Fig 10",
        &["processing".into(), "fetching".into(), "skyline".into(), "total".into()],
    );

    let mut baseline = BaselineExecutor::new(&table);
    let b = summarize(&run_queries(&mut baseline, &queries));
    print_stage_row("Baseline", &b);

    // Prioritized1D surfaces the single-bound cases the figure reports.
    let records = run_cbcs(
        &table,
        &queries,
        &[],
        MprMode::Approximate { k: 1 },
        SearchStrategy::Prioritized1D,
    );
    let all = summarize(records.iter());
    print_stage_row("aMPR (all hits)", &all);
    for (label, want) in [
        ("aMPR Case 1", Overlap::CaseA { dim: 0 }.label()),
        ("aMPR Case 2", Overlap::CaseB { dim: 0 }.label()),
        ("aMPR Case 3", Overlap::CaseC { dim: 0 }.label()),
        ("aMPR Case 4", Overlap::CaseD { dim: 0 }.label()),
    ] {
        let slice = filter_by_case(&records, |c| c.label() == want);
        if slice.is_empty() {
            print_row(label, &["-".into(), "-".into(), "-".into(), "-".into()]);
        } else {
            let s = summarize(slice.iter().copied());
            print_stage_row(label, &s);
        }
    }
}

fn print_stage_row(label: &str, s: &Summary) {
    print_row(label, &[ms(s.stages_s[0]), ms(s.stages_s[1]), ms(s.stages_s[2]), ms(s.avg_time_s)]);
}

/// Figures 11a/11b: response time per cache search strategy.
pub fn fig11(scale: &Scale) {
    println!(
        "\n#### Figure 11: cache search strategies (independent data, |S| = {}, |D| = 5) ####",
        fmt_size(scale.mid_n)
    );
    let table = synthetic_table(Distribution::Independent, 5, scale.mid_n, 42);

    let strategies = [
        SearchStrategy::Random,
        SearchStrategy::MaxOverlap,
        SearchStrategy::MaxOverlapSP,
        SearchStrategy::Prioritized1D,
        SearchStrategy::prioritized_nd_std(),
        SearchStrategy::prioritized_nd_bad(),
        SearchStrategy::OptimumDistance,
    ];

    // (a) interactive workload, empty cache.
    let queries = interactive_queries(&table, scale.interactive_queries, 17, None);
    print_header("Fig 11a (interactive)", &size_columns());
    for strategy in &strategies {
        let records =
            run_cbcs(&table, &queries, &[], MprMode::Approximate { k: 1 }, strategy.clone());
        let s = summarize(records.iter());
        print_row(&strategy.label(), &[secs(s.avg_time_s), count(s.avg_points), count(s.avg_rq)]);
    }

    // (b) independent queries over a preloaded cache. The paper drops
    // Prioritized1D here (single-bound cases barely occur).
    let preload = independent_queries(&table, scale.preload, 5, None);
    let queries = independent_queries(&table, scale.independent_queries, 19, None);
    print_header("Fig 11b (independent, preloaded cache)", &size_columns());
    for strategy in &strategies {
        if *strategy == SearchStrategy::Prioritized1D {
            continue;
        }
        let records =
            run_cbcs(&table, &queries, &preload, MprMode::Approximate { k: 1 }, strategy.clone());
        let s = summarize(records.iter());
        print_row(&strategy.label(), &[secs(s.avg_time_s), count(s.avg_points), count(s.avg_rq)]);
    }
}

/// Figures 12a/12b: the real-estate dataset (4 dimensions).
pub fn fig12(scale: &Scale) {
    println!(
        "\n#### Figure 12: Danish-style property data (|S| = {}, |D| = 4) ####",
        fmt_size(scale.real_n)
    );
    let table = real_estate_table(scale.real_n, 2005);

    // (a) interactive exploratory search.
    let queries = interactive_queries(&table, scale.interactive_queries, 17, None);
    print_header("Fig 12a (interactive)", &size_columns());

    let mut baseline = BaselineExecutor::new(&table);
    let b = summarize(&run_queries(&mut baseline, &queries));
    print_row("Baseline", &[secs(b.avg_time_s), count(b.avg_points), count(b.avg_rq)]);

    let mut bbs = BbsExecutor::new(&table);
    let s = summarize(&run_queries(&mut bbs, &queries));
    print_row("BBS", &[secs(s.avg_time_s), count(s.avg_points), count(s.avg_rq)]);

    let records = run_cbcs(
        &table,
        &queries,
        &[],
        MprMode::Approximate { k: 1 },
        SearchStrategy::MaxOverlapSP,
    );
    method_rows("aMPR", &records);

    // (b) independent queries, preloaded cache, varying #NN.
    let preload = independent_queries(&table, scale.preload, 5, None);
    let queries = independent_queries(&table, scale.independent_queries.clamp(25, 50), 19, None);
    print_header("Fig 12b (independent, preloaded cache)", &size_columns());
    let mut baseline = BaselineExecutor::new(&table);
    let b = summarize(&run_queries(&mut baseline, &queries));
    print_row("Baseline", &[secs(b.avg_time_s), count(b.avg_points), count(b.avg_rq)]);
    let mut bbs = BbsExecutor::new(&table);
    let s = summarize(&run_queries(&mut bbs, &queries));
    print_row("BBS", &[secs(s.avg_time_s), count(s.avg_points), count(s.avg_rq)]);
    for k in [1usize, 5, 10] {
        let records = run_cbcs(
            &table,
            &queries,
            &preload,
            MprMode::Approximate { k },
            SearchStrategy::prioritized_nd_std(),
        );
        let s = summarize(records.iter());
        print_row(
            &format!("aMPR({k}p)"),
            &[secs(s.avg_time_s), count(s.avg_points), count(s.avg_rq)],
        );
    }
}

/// Ablation (Section 6.2, left as future work by the paper): LRU vs LCU
/// cache replacement under a small capacity.
pub fn ablation_replacement(scale: &Scale) {
    println!("\n#### Ablation: cache replacement policies (interactive, |D|=3) ####");
    let table = synthetic_table(Distribution::Independent, 3, scale.mid_n.min(200_000), 42);
    let queries = interactive_queries(&table, scale.interactive_queries.max(200), 17, None);
    print_header("replacement", &["avg time".into(), "pts read".into(), "hit rate".into()]);
    for (label, capacity, policy) in [
        ("unbounded", None, ReplacementPolicy::Lru),
        ("LRU cap=8", Some(8), ReplacementPolicy::Lru),
        ("LCU cap=8", Some(8), ReplacementPolicy::Lcu),
        ("LRU cap=2", Some(2), ReplacementPolicy::Lru),
        ("LCU cap=2", Some(2), ReplacementPolicy::Lcu),
    ] {
        let config = CbcsConfig {
            mpr: MprMode::Approximate { k: 1 },
            strategy: SearchStrategy::MaxOverlapSP,
            capacity,
            policy,
            ..Default::default()
        };
        let mut ex = CbcsExecutor::new(&table, config);
        let records = run_queries(&mut ex, &queries);
        let s = summarize(records.iter());
        let hits = records.iter().filter(|r| r.stats.cache_hit).count();
        print_row(
            label,
            &[
                secs(s.avg_time_s),
                count(s.avg_points),
                format!("{:.0}%", hits as f64 / records.len() as f64 * 100.0),
            ],
        );
    }
}

/// Ablation: the #NN knob of the aMPR (Section 5.3's trade-off) on both
/// workloads.
pub fn ablation_k(scale: &Scale) {
    println!("\n#### Ablation: aMPR nearest-neighbor count (|D|=4) ####");
    let table = synthetic_table(Distribution::Independent, 4, scale.mid_n.min(200_000), 42);
    for interactive in [true, false] {
        let name = if interactive { "interactive" } else { "independent" };
        print_header(
            &format!("aMPR k sweep ({name})"),
            &["avg time".into(), "pts read".into(), "range qs".into()],
        );
        let (preload, queries) = if interactive {
            (Vec::new(), interactive_queries(&table, scale.interactive_queries, 17, None))
        } else {
            (
                independent_queries(&table, scale.preload, 5, None),
                independent_queries(&table, scale.independent_queries.min(60), 19, None),
            )
        };
        for k in [0usize, 1, 2, 3, 5, 8, 10, 15] {
            let strategy = if interactive {
                SearchStrategy::MaxOverlapSP
            } else {
                SearchStrategy::prioritized_nd_std()
            };
            let records =
                run_cbcs(&table, &queries, &preload, MprMode::Approximate { k }, strategy);
            let s = summarize(records.iter());
            print_row(
                &format!("k={k}"),
                &[secs(s.avg_time_s), count(s.avg_points), count(s.avg_rq)],
            );
        }
    }
}

/// Ablation: multi-item cache exploitation (the paper's Section 6.3
/// future work, implemented here): harvest pruning points from extra
/// overlapping cache items.
pub fn ablation_multi(scale: &Scale) {
    println!("\n#### Ablation: multi-item processing (Section 6.3 extension) ####");
    let table = synthetic_table(Distribution::Independent, 4, scale.mid_n.min(200_000), 42);
    for interactive in [true, false] {
        let name = if interactive { "interactive" } else { "independent" };
        print_header(
            &format!("extra items ({name})"),
            &["avg time".into(), "pts read".into(), "range qs".into()],
        );
        let (preload, queries) = if interactive {
            (Vec::new(), interactive_queries(&table, scale.interactive_queries, 17, None))
        } else {
            (
                independent_queries(&table, scale.preload, 5, None),
                independent_queries(&table, scale.independent_queries.min(60), 19, None),
            )
        };
        for extra in [0usize, 1, 2, 4, 8] {
            let config = CbcsConfig {
                mpr: MprMode::Approximate { k: 2 },
                strategy: if interactive {
                    SearchStrategy::MaxOverlapSP
                } else {
                    SearchStrategy::MaxOverlap
                },
                extra_items: extra,
                ..Default::default()
            };
            let mut ex = CbcsExecutor::new(&table, config);
            for c in &preload {
                ex.execute(&QueryRequest::new(c.clone())).expect("preload query succeeds");
            }
            let records = run_queries(&mut ex, &queries);
            let s = summarize(records.iter());
            print_row(
                &format!("extra={extra}"),
                &[secs(s.avg_time_s), count(s.avg_points), count(s.avg_rq)],
            );
        }
    }
}

/// Parallel-pipeline experiment (this repository's performance extension,
/// not a paper figure): sequential vs parallel skyline kernels across
/// cardinality/dimensionality/lane counts, plus the end-to-end CBCS
/// pipeline under [`skycache_core::ExecMode`]. Results are printed as a
/// table and written to `BENCH_parallel.json` in the working directory so
/// the perf trajectory is tracked across revisions.
pub fn parallel(scale: &Scale) {
    use std::time::Instant;

    use skycache_algos::{ParallelDc, Sfs, SkylineAlgorithm};
    use skycache_core::ExecMode;
    use skycache_datagen::SyntheticGen;

    fn best_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            std::hint::black_box(f());
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    }

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\n#### Parallel pipeline: sequential vs parallel (host parallelism = {host}) ####");

    // Lane counts below 2 would compare the sequential fallback against
    // SFS, which says nothing about parallelism.
    let mut lane_set = vec![2, 4, host];
    lane_set.retain(|&l| l >= 2);
    lane_set.sort_unstable();
    lane_set.dedup();

    // Part 1: the skyline stage alone — SFS vs the *adaptive* ParallelDc
    // on the raw point sets (independent distribution, as in most paper
    // figures). Configurations the cost gate rejects report the
    // sequential fallback they actually run (`gated: true`, speedup 1.0):
    // after the adaptive gate, no configuration can lose to sequential.
    print_header(
        "Skyline stage",
        &[
            "n".into(),
            "|D|".into(),
            "lanes".into(),
            "seq".into(),
            "par".into(),
            "speedup".into(),
            "gated".into(),
        ],
    );
    let mut skyline_rows = Vec::new();
    for &(n, dims) in &scale.parallel_cases {
        let points = SyntheticGen::new(Distribution::Independent, dims, 42).generate(n);
        let seq_s = best_secs(2, || Sfs.compute(points.clone()));
        for &lanes in &lane_set {
            let algo = ParallelDc { threads: lanes, sequential_threshold: 4096 };
            let gated = !algo.should_engage(n, dims);
            // A gated configuration runs the sequential block path, so
            // both sides of its ratio are the same measurement by
            // construction — report it that way instead of re-timing the
            // identical code and calling the noise a speedup.
            let par_s = if gated { seq_s } else { best_secs(2, || algo.compute(points.clone())) };
            let speedup = seq_s / par_s;
            print_row(
                "",
                &[
                    fmt_size(n),
                    dims.to_string(),
                    lanes.to_string(),
                    ms(seq_s),
                    ms(par_s),
                    format!("{speedup:.2}x"),
                    if gated { "yes".into() } else { "no".into() },
                ],
            );
            let floor = ParallelDc::min_parallel_points(lanes, dims);
            let floor_json =
                if floor == usize::MAX { "null".to_string() } else { floor.to_string() };
            skyline_rows.push(format!(
                concat!(
                    "{{\"n\": {}, \"dims\": {}, \"lanes\": {}, ",
                    "\"seq_ms\": {:.3}, \"par_ms\": {:.3}, \"speedup\": {:.3}, ",
                    "\"gated\": {}, \"min_parallel_points\": {}}}"
                ),
                n,
                dims,
                lanes,
                seq_s * 1e3,
                par_s * 1e3,
                speedup,
                gated,
                floor_json
            ));
        }
    }

    // Part 2: the end-to-end CBCS pipeline — ExecMode::Sequential vs
    // ExecMode::Parallel on an interactive workload (exact MPR, whose
    // multi-region plans are what the fetch lanes spread out). Reported
    // times include the deterministic simulated I/O latency, so the
    // fetch-side gain (per-lane max vs sum) is machine-independent.
    let (n, dims) = *scale.parallel_cases.first().expect("at least one parallel case");
    let table = synthetic_table(Distribution::Independent, dims, n, 42);
    let queries = interactive_queries(&table, scale.interactive_queries, 17, None);
    let lanes = host.max(2);
    let exec = ExecMode::Parallel { lanes, dc_threshold: 4096 };

    print_header(
        &format!("End-to-end CBCS (exact MPR, n = {}, |D| = {dims})", fmt_size(n)),
        &["avg time".into(), "pts read".into(), "range qs".into()],
    );
    let mut summaries = Vec::new();
    for (label, exec_mode) in [("Sequential", ExecMode::Sequential), ("Parallel", exec)] {
        let config = CbcsConfig { mpr: MprMode::Exact, exec: exec_mode, ..Default::default() };
        let records = run_queries(&mut CbcsExecutor::new(&table, config), &queries);
        let s = summarize(records.iter());
        print_row(label, &[secs(s.avg_time_s), count(s.avg_points), count(s.avg_rq)]);
        summaries.push(s);
    }
    let pipeline_speedup = summaries[0].avg_time_s / summaries[1].avg_time_s;
    println!("pipeline speedup: {pipeline_speedup:.2}x");

    let json = format!(
        concat!(
            "{{\n",
            "  \"host_parallelism\": {},\n",
            "  \"gate\": {{\"spawn_overhead_ns\": {}, \"seq_ns_per_cell\": {:.1}, ",
            "\"parallel_efficiency\": {:.2}, \"planar_dims\": {}}},\n",
            "  \"skyline\": [\n    {}\n  ],\n",
            "  \"pipeline\": {{\"n\": {}, \"dims\": {}, \"lanes\": {}, ",
            "\"seq_avg_ms\": {:.3}, \"par_avg_ms\": {:.3}, \"speedup\": {:.3}}}\n",
            "}}\n"
        ),
        host,
        ParallelDc::SPAWN_OVERHEAD_NS,
        ParallelDc::SEQ_NS_PER_CELL,
        ParallelDc::PARALLEL_EFFICIENCY,
        skycache_algos::PLANAR_DIMS,
        skyline_rows.join(",\n    "),
        n,
        dims,
        lanes,
        summaries[0].avg_time_s * 1e3,
        summaries[1].avg_time_s * 1e3,
        pipeline_speedup
    );
    match std::fs::write("BENCH_parallel.json", &json) {
        Ok(()) => println!("wrote BENCH_parallel.json"),
        Err(e) => eprintln!("could not write BENCH_parallel.json: {e}"),
    }
}

/// `repro obs` — the observability pass: both paper workload generators
/// run through CBCS with per-query recording on, and the merged
/// [`skycache_obs::QueryReport`]s are aggregated into per-phase latency
/// and cache/fetch counter series.
///
/// Besides the text tables, the aggregates are written to
/// `BENCH_obs.json` (schema `skyobs-bench/1`); each workload entry
/// embeds its merged report in the versioned `skyobs-report/1` format.
pub fn obs(scale: &Scale) {
    use skycache_obs::{names, Phase, QueryReport};

    println!("\n#### Observability: per-phase latency and cache/fetch aggregates ####");

    let dims = 4;
    let n = scale.mid_n.min(100_000);
    let table = synthetic_table(Distribution::Independent, dims, n, 42);

    // A bounded cache so the eviction counters are exercised too.
    let capacity = 32;

    let run_recorded = |queries: &[Constraints]| -> (QueryReport, usize) {
        let config = CbcsConfig { capacity: Some(capacity), ..Default::default() };
        let mut ex = CbcsExecutor::new(&table, config);
        let mut agg = QueryReport::default();
        for c in queries {
            let out = ex
                .execute(&QueryRequest::new(c.clone()).recorded())
                .expect("recorded benchmark query succeeds");
            agg.merge(&out.report.expect("recorded request yields a report"));
        }
        (agg, queries.len())
    };

    let workloads: Vec<(&str, QueryReport, usize)> = {
        let interactive = interactive_queries(&table, scale.interactive_queries, 17, None);
        let independent = independent_queries(&table, scale.independent_queries, 19, None);
        let (int_report, int_n) = run_recorded(&interactive);
        let (ind_report, ind_n) = run_recorded(&independent);
        vec![("interactive", int_report, int_n), ("independent", ind_report, ind_n)]
    };

    let mut entries = Vec::new();
    for (name, report, queries) in &workloads {
        let hits = report.counter(names::CACHE_HITS);
        let misses = report.counter(names::CACHE_MISSES);
        let hit_rate = if hits + misses > 0 { hits as f64 / (hits + misses) as f64 } else { 0.0 };

        print_header(
            &format!(
                "{name} workload (q = {queries}, n = {}, |D| = {dims}, capacity = {capacity})",
                fmt_size(n)
            ),
            &["total".into(), "avg/query".into()],
        );
        for phase in Phase::ALL {
            let total_s = report.phase_ns(phase) as f64 * 1e-9;
            print_row(phase.label(), &[secs(total_s), ms(total_s / *queries as f64)]);
        }
        println!(
            "hits {hits}  misses {misses}  hit-rate {:.0}%  evictions {}  points read {}  range queries {}",
            hit_rate * 100.0,
            report.counter(names::CACHE_EVICTIONS),
            report.counter(names::FETCH_POINTS_READ),
            report.counter(names::FETCH_RQ_EXECUTED),
        );

        // Embed the merged report in its own versioned format, indented
        // to sit inside the workload object.
        let embedded = report.to_json();
        let embedded = embedded.trim_end().replace('\n', "\n      ");
        entries.push(format!(
            concat!(
                "{{\n",
                "      \"name\": \"{}\",\n",
                "      \"queries\": {},\n",
                "      \"hit_rate\": {:.4},\n",
                "      \"report\": {}\n",
                "    }}"
            ),
            name, queries, hit_rate, embedded
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"skyobs-bench/1\",\n",
            "  \"n\": {},\n",
            "  \"dims\": {},\n",
            "  \"cache_capacity\": {},\n",
            "  \"workloads\": [\n    {}\n  ]\n",
            "}}\n"
        ),
        n,
        dims,
        capacity,
        entries.join(",\n    ")
    );
    match std::fs::write("BENCH_obs.json", &json) {
        Ok(()) => println!("wrote BENCH_obs.json"),
        Err(e) => eprintln!("could not write BENCH_obs.json: {e}"),
    }
}

/// `repro perf` — the block-path performance experiment (this
/// repository's zero-copy extension, not a paper figure): both paper
/// workload generators run through CBCS twice under the exact MPR — once
/// on the legacy per-point pipeline (`block_path: false`), once on the
/// block-oriented zero-copy hot path — measuring throughput,
/// heap-allocation events per query (via this crate's counting global
/// allocator), and the coalescing planner's range-query savings.
///
/// Each measurement is one full pass over a fresh workload against a
/// fresh executor: interactive chains reach their case-(c)/(d) steady
/// state within a few queries, while a repeated identical pass would
/// degenerate to pure exact hits and measure the cache instead of the
/// fetch/merge/skyline hot path. Results are written to
/// `BENCH_perf.json` (schema `skyperf-bench/2`), including a d ≥ 5
/// dominance-kernel microbench and per-kernel-generation end-to-end
/// throughput (the [`Kernel`] generation is flipped in-process around
/// the block-path runs, then restored to the environment default).
pub fn perf(scale: &Scale) {
    use std::time::Instant;

    use skycache_geom::{retain_nondominated, Kernel, PointBlock};
    use skycache_obs::names;

    use crate::allocations;

    println!("\n#### Block path: throughput, allocations/query, coalescing ####");

    // Dominance-kernel microbench: block-vs-block filtering at d >= 5,
    // where the wide lane-blocked generation amortizes best. The window
    // is the skyline of an independent sample (exactly what a D&C merge
    // filters against); the candidate block is raw random data. Both
    // generations perform identical dominance tests (same row-granular
    // early exit), so the throughput ratio is a pure kernel comparison.
    let micro_dims = 6;
    let micro_cands = 4096;
    let micro = {
        use skycache_algos::{Sfs, SkylineAlgorithm};
        use skycache_datagen::SyntheticGen;

        let cand_pts =
            SyntheticGen::new(Distribution::Independent, micro_dims, 97).generate(micro_cands);
        let window_pts =
            SyntheticGen::new(Distribution::Independent, micro_dims, 89).generate(micro_cands);
        let window = PointBlock::from_points(&Sfs.compute(window_pts).skyline)
            .expect("skyline of a nonempty sample is nonempty");
        let candidates = PointBlock::from_points(&cand_pts).expect("generated data is uniform");
        let run = |kernel: Kernel| -> (f64, u64) {
            let mut best = f64::INFINITY;
            let mut tests = 0;
            for _ in 0..5 {
                let mut scratch = candidates.clone();
                let t0 = Instant::now();
                let stats =
                    std::hint::black_box(retain_nondominated(&mut scratch, &window, kernel));
                best = best.min(t0.elapsed().as_secs_f64());
                tests = stats.dominance_tests;
            }
            (best, tests)
        };
        let (scalar_s, tests) = run(Kernel::Scalar);
        let (wide_s, wide_tests) = run(Kernel::Wide);
        assert_eq!(tests, wide_tests, "generations must count identically");
        let speedup = scalar_s / wide_s;
        print_header(
            &format!(
                "Dominance kernel (retain_nondominated, |D| = {micro_dims}, \
                 {micro_cands} candidates x {} window rows)",
                window.len()
            ),
            &["scalar Mt/s".into(), "wide Mt/s".into(), "speedup".into()],
        );
        print_row(
            "",
            &[
                format!("{:.1}", tests as f64 / scalar_s / 1e6),
                format!("{:.1}", tests as f64 / wide_s / 1e6),
                format!("{speedup:.2}x"),
            ],
        );
        format!(
            concat!(
                "{{\"dims\": {}, \"candidates\": {}, \"window_rows\": {}, ",
                "\"dominance_tests\": {}, \"scalar_mtests_per_s\": {:.2}, ",
                "\"wide_mtests_per_s\": {:.2}, \"wide_speedup\": {:.3}}}"
            ),
            micro_dims,
            micro_cands,
            window.len(),
            tests,
            tests as f64 / scalar_s / 1e6,
            tests as f64 / wide_s / 1e6,
            speedup
        )
    };

    let dims = 4;
    let n = scale.mid_n.min(100_000);
    let table = synthetic_table(Distribution::Independent, dims, n, 42);

    struct Measured {
        qps: f64,
        allocs_per_query: f64,
        points_read: u64,
        rq_issued: u64,
        rq_executed: u64,
        regions_coalesced: u64,
    }

    // Measured at the paper's default operating point (aMPR with k = 1,
    // the `CbcsConfig` default): the steady-state cached workload the
    // engine actually runs. Best-of-3 on wall clock — each rep replays the
    // whole workload against a fresh executor, so reps are independent and
    // the minimum filters out scheduler noise on shared hosts.
    let run_one = |queries: &[Constraints], block_path: bool| -> Measured {
        const REPS: usize = 3;
        let mut best: Option<Measured> = None;
        for _ in 0..REPS {
            let config = CbcsConfig { block_path, ..Default::default() };
            let mut ex = CbcsExecutor::new(&table, config);
            let a0 = allocations();
            let t0 = Instant::now();
            let records = run_queries(&mut ex, queries);
            let wall = t0.elapsed().as_secs_f64();
            let allocs = allocations() - a0;
            let mut m = Measured {
                qps: queries.len() as f64 / wall.max(1e-9),
                allocs_per_query: allocs as f64 / queries.len() as f64,
                points_read: 0,
                rq_issued: 0,
                rq_executed: 0,
                regions_coalesced: 0,
            };
            for r in &records {
                m.points_read += r.stats.points_read;
                m.rq_issued += r.stats.range_queries_issued;
                m.rq_executed += r.stats.range_queries_executed;
                m.regions_coalesced += r.stats.regions_coalesced;
            }
            if best.as_ref().is_none_or(|b| m.qps > b.qps) {
                best = Some(m);
            }
        }
        best.expect("REPS > 0")
    };

    let workloads: Vec<(&str, Vec<Constraints>)> = vec![
        ("interactive", interactive_queries(&table, scale.interactive_queries, 17, None)),
        ("independent", independent_queries(&table, scale.independent_queries, 19, None)),
    ];

    let mut entries = Vec::new();
    for (name, queries) in &workloads {
        let legacy = run_one(queries, false);
        // Per-kernel-generation end-to-end throughput: pin each generation
        // in-process around a block-path run so one `repro perf` invocation
        // covers both, then restore the pin-or-adaptive default for the
        // headline `block` measurement (what a stock deployment runs).
        Kernel::set_active(Kernel::Scalar);
        let block_scalar = run_one(queries, true);
        Kernel::set_active(Kernel::Wide);
        let block_wide = run_one(queries, true);
        Kernel::reset_to_env();
        let block = run_one(queries, true);
        let alloc_reduction = legacy.allocs_per_query / block.allocs_per_query.max(1e-9);

        print_header(
            &format!("{name} workload (q = {}, n = {}, |D| = {dims})", queries.len(), fmt_size(n)),
            &["qps".into(), "allocs/q".into(), "rq exec".into(), "coalesced".into()],
        );
        for (label, m) in [
            ("legacy", &legacy),
            ("block/scalar", &block_scalar),
            ("block/wide", &block_wide),
            ("block/auto", &block),
        ] {
            print_row(
                label,
                &[
                    format!("{:.0}", m.qps),
                    format!("{:.1}", m.allocs_per_query),
                    m.rq_executed.to_string(),
                    m.regions_coalesced.to_string(),
                ],
            );
        }
        println!("allocation reduction: {alloc_reduction:.1}x");

        let fmt_measured = |m: &Measured| {
            format!(
                concat!(
                    "{{\"qps\": {:.1}, \"{}\": {:.2}, \"points_read\": {}, ",
                    "\"rq_issued\": {}, \"rq_executed\": {}, \"{}\": {}}}"
                ),
                m.qps,
                names::ALLOC_PER_QUERY,
                m.allocs_per_query,
                m.points_read,
                m.rq_issued,
                m.rq_executed,
                names::FETCH_REGIONS_COALESCED,
                m.regions_coalesced,
            )
        };
        entries.push(format!(
            concat!(
                "{{\n",
                "      \"name\": \"{}\",\n",
                "      \"queries\": {},\n",
                "      \"legacy\": {},\n",
                "      \"block\": {},\n",
                "      \"kernels\": {{\"scalar_qps\": {:.1}, \"wide_qps\": {:.1}}},\n",
                "      \"alloc_reduction\": {:.2},\n",
                "      \"rq_saved_by_coalescing\": {}\n",
                "    }}"
            ),
            name,
            queries.len(),
            fmt_measured(&legacy),
            fmt_measured(&block),
            block_scalar.qps,
            block_wide.qps,
            alloc_reduction,
            legacy.rq_executed.saturating_sub(block.rq_executed),
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"skyperf-bench/2\",\n",
            "  \"n\": {},\n",
            "  \"dims\": {},\n",
            "  \"mpr\": \"aMPR(k=1)\",\n",
            "  \"kernel_microbench\": {},\n",
            "  \"workloads\": [\n    {}\n  ]\n",
            "}}\n"
        ),
        n,
        dims,
        micro,
        entries.join(",\n    ")
    );
    match std::fs::write("BENCH_perf.json", &json) {
        Ok(()) => println!("wrote BENCH_perf.json"),
        Err(e) => eprintln!("could not write BENCH_perf.json: {e}"),
    }
}

/// `repro policy` — the cache-policy study (DESIGN.md §17): every
/// replacement policy (LRU, LCU, TinyLFU, cost-aware) crossed with
/// compositional multi-item hits on/off, over the two paper workloads
/// plus a Zipf-skewed multi-user workload whose base-query pool exceeds
/// the cache capacity.
///
/// Two properties this experiment demonstrates (asserted by CI against
/// `BENCH_policy.json`, schema `skypolicy-bench/1`):
///
/// 1. composition on reduces total points read versus composition off on
///    at least one paper workload at equal capacity and policy;
/// 2. a frequency/cost-aware policy (TinyLFU or cost-aware) beats both
///    LRU and LCU on the *free-hit* rate (exact or case-(b) hits that
///    answer from cache with zero fetch) under Zipf skew at equal
///    capacity.
///
/// `hit_rate` in the JSON is that free-hit fraction; `overlap_hit_rate`
/// is the any-overlap fraction (near 1.0 once the cache warms — every
/// policy keeps *some* overlapping item, so it does not discriminate).
pub fn policy(scale: &Scale) {
    use std::time::Instant;

    use crate::zipf_queries;

    println!("\n#### Cache policy: replacement x compositional hits ####");

    let dims = 4;
    let n = scale.mid_n.min(100_000);
    let table = synthetic_table(Distribution::Independent, dims, n, 42);
    let capacity = 32;
    let zipf_pool = 96;
    let zipf_exponent = 1.1;
    let zipf_rotate = 0;

    let workloads: Vec<(&str, Vec<Constraints>)> = vec![
        ("interactive", interactive_queries(&table, scale.interactive_queries.max(200), 17, None)),
        ("independent", independent_queries(&table, scale.independent_queries.max(200), 19, None)),
        ("zipf", zipf_queries(&table, 400, 23, zipf_pool, zipf_exponent, zipf_rotate)),
    ];

    let policies = [
        ("lru", ReplacementPolicy::Lru),
        ("lcu", ReplacementPolicy::Lcu),
        ("tinylfu", ReplacementPolicy::TinyLfu),
        ("costaware", ReplacementPolicy::CostAware),
    ];

    let mut cells = Vec::new();
    for (wname, queries) in &workloads {
        print_header(
            &format!(
                "{wname} (q = {}, n = {}, |D| = {dims}, capacity = {capacity})",
                queries.len(),
                fmt_size(n)
            ),
            &[
                "free hits".into(),
                "overlap".into(),
                "composed".into(),
                "pts read".into(),
                "qps".into(),
            ],
        );
        for (pname, policy) in policies {
            for compose in [false, true] {
                let config =
                    CbcsConfig { capacity: Some(capacity), policy, compose, ..Default::default() };
                let mut ex = CbcsExecutor::new(&table, config);
                let start = Instant::now();
                let records = run_queries(&mut ex, queries);
                let wall = start.elapsed().as_secs_f64().max(1e-9);

                let free_hits = records
                    .iter()
                    .filter(|r| {
                        matches!(r.stats.case, Some(Overlap::Exact | Overlap::CaseB { .. }))
                    })
                    .count();
                let overlap_hits = records.iter().filter(|r| r.stats.cache_hit).count();
                let composed_hits = records.iter().filter(|r| r.stats.composed_items >= 2).count();
                let cover_sum: f64 = records
                    .iter()
                    .filter(|r| r.stats.composed_items >= 2)
                    .map(|r| r.stats.cover_fraction)
                    .sum();
                let avg_cover =
                    if composed_hits > 0 { cover_sum / composed_hits as f64 } else { 0.0 };
                let points_read: u64 = records.iter().map(|r| r.stats.points_read).sum();
                let rejects: u64 = records.iter().map(|r| r.stats.admission_rejects).sum();
                let q = records.len() as f64;
                let hit_rate = free_hits as f64 / q;
                let overlap_rate = overlap_hits as f64 / q;
                let qps = q / wall;

                print_row(
                    &format!("{pname}{}", if compose { " +compose" } else { "" }),
                    &[
                        format!("{:.0}%", hit_rate * 100.0),
                        format!("{:.0}%", overlap_rate * 100.0),
                        composed_hits.to_string(),
                        count(points_read as f64 / q),
                        count(qps),
                    ],
                );

                cells.push(format!(
                    concat!(
                        "{{\n",
                        "      \"workload\": \"{}\",\n",
                        "      \"policy\": \"{}\",\n",
                        "      \"compose\": {},\n",
                        "      \"queries\": {},\n",
                        "      \"hit_rate\": {:.4},\n",
                        "      \"overlap_hit_rate\": {:.4},\n",
                        "      \"composed_hits\": {},\n",
                        "      \"avg_cover_fraction\": {:.4},\n",
                        "      \"points_read\": {},\n",
                        "      \"admission_rejects\": {},\n",
                        "      \"qps\": {:.1}\n",
                        "    }}"
                    ),
                    wname,
                    pname,
                    compose,
                    records.len(),
                    hit_rate,
                    overlap_rate,
                    composed_hits,
                    avg_cover,
                    points_read,
                    rejects,
                    qps
                ));
            }
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"skypolicy-bench/1\",\n",
            "  \"n\": {},\n",
            "  \"dims\": {},\n",
            "  \"cache_capacity\": {},\n",
            "  \"zipf\": {{ \"pool\": {}, \"exponent\": {:.2}, \"rotate_every\": {} }},\n",
            "  \"cells\": [\n    {}\n  ]\n",
            "}}\n"
        ),
        n,
        dims,
        capacity,
        zipf_pool,
        zipf_exponent,
        zipf_rotate,
        cells.join(",\n    ")
    );
    match std::fs::write("BENCH_policy.json", &json) {
        Ok(()) => println!("wrote BENCH_policy.json"),
        Err(e) => eprintln!("could not write BENCH_policy.json: {e}"),
    }
}
