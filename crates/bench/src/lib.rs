//! Shared experiment harness for reproducing the paper's evaluation
//! (Section 7).
//!
//! The `repro` binary regenerates every table/figure series; the Criterion
//! benches in `benches/` measure the same code paths at reduced scale.
//! This library holds the common pieces: dataset/workload construction,
//! executor runners, per-query record collection, and aggregation into the
//! series the paper plots.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod check;
pub mod figures;
pub mod serve;

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use skycache_core::{Executor, Overlap, QueryRequest, QueryStats};
use skycache_datagen::{
    DimStats, Distribution, IndependentWorkload, InteractiveWorkload, RealEstateGen, SyntheticGen,
    ZipfWorkload,
};
use skycache_geom::Constraints;
use skycache_storage::{Table, TableConfig};

/// Counting wrapper around the system allocator: every benchmark and test
/// binary linking this crate counts heap-allocation *events* (alloc,
/// realloc, alloc_zeroed — frees are not counted), so `repro perf` and the
/// allocation-ceiling tests can report allocations per query. The count is
/// a process-wide monotone counter; measure deltas around the region of
/// interest via [`allocations`].
pub struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a
// Relaxed atomic with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds GlobalAlloc's contract for `layout`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller upholds GlobalAlloc's contract for `ptr`/`layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds GlobalAlloc's contract for `ptr`/`layout`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds GlobalAlloc's contract for `layout`.
        unsafe { System.alloc_zeroed(layout) }
    }
}

/// The process-wide allocator for every binary in this crate.
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap-allocation events since process start (monotone; take deltas).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Builds a synthetic table.
pub fn synthetic_table(dist: Distribution, dims: usize, n: usize, seed: u64) -> Table {
    let points = SyntheticGen::new(dist, dims, seed).generate(n);
    Table::build(points, TableConfig::default()).expect("generated data is valid")
}

/// Builds the real-estate table (Section 7.5 substitute).
pub fn real_estate_table(n: usize, seed: u64) -> Table {
    let points = RealEstateGen::new(seed).generate(n);
    Table::build(points, TableConfig::default()).expect("generated data is valid")
}

/// Interactive exploratory search queries over a table (Section 7.1,
/// workload 1). `constrained_dims = None` constrains every dimension.
pub fn interactive_queries(
    table: &Table,
    total: usize,
    seed: u64,
    constrained_dims: Option<usize>,
) -> Vec<Constraints> {
    let stats = DimStats::compute(table.all_points());
    let mut generator = InteractiveWorkload::new(stats);
    if let Some(k) = constrained_dims {
        generator = generator.constrained_dims(k);
    }
    generator.generate(total, seed).queries().iter().map(|q| q.constraints.clone()).collect()
}

/// Independent multi-user queries (Section 7.1, workload 2).
pub fn independent_queries(
    table: &Table,
    total: usize,
    seed: u64,
    constrained_dims: Option<usize>,
) -> Vec<Constraints> {
    let stats = DimStats::compute(table.all_points());
    let mut generator = IndependentWorkload::new(stats);
    if let Some(k) = constrained_dims {
        generator = generator.constrained_dims(k);
    }
    generator.generate(total, seed).queries().iter().map(|q| q.constraints.clone()).collect()
}

/// Zipf-skewed multi-user queries (DESIGN.md §17): a fixed pool of base
/// queries re-issued with popularity ∝ 1/rank^`exponent`, plus occasional
/// one-step refinement drift. `rotate_every > 0` shifts the hot set by a
/// quarter of the pool every that many queries (trending traffic).
/// Discriminates frequency-aware replacement policies from recency-based
/// ones at `capacity < pool`.
pub fn zipf_queries(
    table: &Table,
    total: usize,
    seed: u64,
    pool: usize,
    exponent: f64,
    rotate_every: usize,
) -> Vec<Constraints> {
    let stats = DimStats::compute(table.all_points());
    let generator =
        ZipfWorkload::new(stats).pool(pool).exponent(exponent).rotate_every(rotate_every);
    generator.generate(total, seed).queries().iter().map(|q| q.constraints.clone()).collect()
}

/// One executed query's record, kept for later slicing.
#[derive(Clone, Debug)]
pub struct Record {
    /// Full engine statistics.
    pub stats: QueryStats,
}

impl Record {
    /// Total latency (measured CPU + simulated I/O).
    pub fn total(&self) -> Duration {
        self.stats.stages.total()
    }
}

/// Runs every query through the executor, collecting records.
///
/// # Panics
/// Panics if a query fails (benchmark configurations are known-valid).
pub fn run_queries(ex: &mut dyn Executor, queries: &[Constraints]) -> Vec<Record> {
    queries
        .iter()
        .map(|c| Record {
            stats: ex
                .execute(&QueryRequest::new(c.clone()))
                .expect("benchmark query succeeds")
                .stats,
        })
        .collect()
}

/// Aggregate over a slice of records.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    /// Number of queries aggregated.
    pub n: usize,
    /// Mean total latency in seconds.
    pub avg_time_s: f64,
    /// Mean points read from disk.
    pub avg_points: f64,
    /// Mean range queries issued.
    pub avg_rq: f64,
    /// Mean range queries that actually read data.
    pub avg_rq_executed: f64,
    /// Mean dominance tests.
    pub avg_dom_tests: f64,
    /// Mean per-stage seconds: processing, fetching, skyline.
    pub stages_s: [f64; 3],
}

/// Summarizes records, optionally filtered.
pub fn summarize<'a>(records: impl IntoIterator<Item = &'a Record>) -> Summary {
    let mut s = Summary::default();
    for r in records {
        s.n += 1;
        s.avg_time_s += r.total().as_secs_f64();
        s.avg_points += r.stats.points_read as f64;
        s.avg_rq += r.stats.range_queries_issued as f64;
        s.avg_rq_executed += r.stats.range_queries_executed as f64;
        s.avg_dom_tests += r.stats.dominance_tests as f64;
        s.stages_s[0] += r.stats.stages.processing.as_secs_f64();
        s.stages_s[1] += r.stats.stages.fetching.as_secs_f64();
        s.stages_s[2] += r.stats.stages.skyline.as_secs_f64();
    }
    if s.n > 0 {
        let n = s.n as f64;
        s.avg_time_s /= n;
        s.avg_points /= n;
        s.avg_rq /= n;
        s.avg_rq_executed /= n;
        s.avg_dom_tests /= n;
        for v in &mut s.stages_s {
            *v /= n;
        }
    }
    s
}

/// Slices records by stability of the used cache item.
pub fn split_by_stability(records: &[Record]) -> (Vec<&Record>, Vec<&Record>) {
    let stable = records.iter().filter(|r| r.stats.stable() == Some(true)).collect();
    let unstable = records.iter().filter(|r| r.stats.stable() == Some(false)).collect();
    (stable, unstable)
}

/// Records whose used-cache-item classification matches `pred`.
pub fn filter_by_case<'a>(
    records: &'a [Record],
    pred: impl Fn(Overlap) -> bool + 'a,
) -> Vec<&'a Record> {
    records.iter().filter(|r| r.stats.case.is_some_and(&pred)).collect()
}

/// Formats a dataset size like the paper's axis labels (`2M`, `500k`).
pub fn fmt_size(n: usize) -> String {
    if n >= 1_000_000 && n.is_multiple_of(1_000_000) {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000 {
        format!("{}k", n / 1_000)
    } else {
        n.to_string()
    }
}

/// Prints one table row: a label plus per-column values.
pub fn print_row(label: &str, values: &[String]) {
    print!("{label:<24}");
    for v in values {
        print!(" {v:>12}");
    }
    println!();
}

/// Prints a section header plus a column-header row.
pub fn print_header(title: &str, columns: &[String]) {
    println!("\n== {title} ==");
    print_row("", columns);
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycache_core::{BaselineExecutor, CbcsConfig, CbcsExecutor};

    #[test]
    fn harness_runs_and_summarizes() {
        let table = synthetic_table(Distribution::Independent, 3, 2_000, 1);
        let queries = interactive_queries(&table, 20, 2, None);
        assert_eq!(queries.len(), 20);

        let mut baseline = BaselineExecutor::new(&table);
        let records = run_queries(&mut baseline, &queries);
        let s = summarize(&records);
        assert_eq!(s.n, 20);
        assert!(s.avg_points > 0.0);
        assert!(s.avg_time_s > 0.0);

        let mut cbcs = CbcsExecutor::new(&table, CbcsConfig::default());
        let records = run_queries(&mut cbcs, &queries);
        let (stable, unstable) = split_by_stability(&records);
        assert!(stable.len() + unstable.len() <= records.len());
        let hits = filter_by_case(&records, |_| true);
        assert_eq!(hits.len(), stable.len() + unstable.len());
    }

    #[test]
    fn independent_workload_builds() {
        let table = synthetic_table(Distribution::Correlated, 2, 500, 3);
        let queries = independent_queries(&table, 10, 4, Some(2));
        assert_eq!(queries.len(), 10);
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(2_000_000), "2M");
        assert_eq!(fmt_size(500_000), "500k");
        assert_eq!(fmt_size(999), "999");
    }
}
