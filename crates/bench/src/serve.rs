//! `repro serve` — concurrent-load benchmark of the TCP query server
//! (DESIGN.md §16), written to `BENCH_serve.json` (schema
//! `skyserve-bench/1`).
//!
//! Three phases against a real loopback server:
//!
//! 1. **Load matrix** — qps and latency percentiles per client count,
//!    with singleflight coalescing on and off, over the seeded
//!    interactive workload (clients stride the same query list, so
//!    identical queries genuinely collide in flight).
//! 2. **Coalesce burst** — barrier-synchronized clients fire the *same
//!    fresh expensive query* each round; the run asserts at least one
//!    join happened, so the dedup counter in the artifact is never
//!    vacuous.
//! 3. **Read scaling** — the cache is warmed with the full workload,
//!    then hit-only throughput is measured per client count; snapshot
//!    reads should scale instead of serializing on the cache lock.
//!
//! Everything data-shaped is seeded; only wall-clock numbers vary.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Barrier;
use std::time::Instant;

use skycache_core::{CbcsConfig, ServiceConfig};
use skycache_datagen::Distribution;
use skycache_geom::{Constraints, Point};
use skycache_serve::{serve, ServerHandle};
use skycache_storage::{Table, TableConfig};

use crate::figures::Scale;
use crate::{fmt_size, interactive_queries, print_header, print_row};

/// Data/workload seed for every phase (workload generation is seeded on
/// top of it, so the whole run is reproducible modulo wall clock).
const SEED: u64 = 101;

/// Client counts for the load matrix and read-scaling phases.
const CLIENTS: [usize; 4] = [1, 2, 4, 8];

/// Barrier-synchronized clients in the coalesce burst.
const BURST_CLIENTS: usize = 4;

/// Rounds in the coalesce burst (one fresh query per round).
const BURST_ROUNDS: usize = 32;

/// One TCP client speaking the line protocol.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to bench server");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { reader, writer: stream }
    }

    fn roundtrip(&mut self, request: &str) -> String {
        writeln!(self.writer, "{request}").expect("send request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        let reply = line.trim_end().to_owned();
        assert!(reply.starts_with("OK "), "server error for {request:?}: {reply:?}");
        reply
    }
}

/// Serializes a query request line: `Q lo hi lo hi ...`.
fn query_line(c: &Constraints) -> String {
    let mut line = String::from("Q");
    for dim in 0..c.dims() {
        line.push_str(&format!(" {} {}", c.lo()[dim], c.hi()[dim]));
    }
    line
}

/// Server-side counters scraped from a `STATS` reply.
#[derive(Clone, Copy, Debug, Default)]
struct Stats {
    coalesced: u64,
    negative_hits: u64,
    negative_inserts: u64,
    computes: u64,
}

fn fetch_stats(addr: SocketAddr) -> Stats {
    let mut client = Client::connect(addr);
    let reply = client.roundtrip("STATS");
    client.roundtrip("QUIT");
    let field = |name: &str| -> u64 {
        reply
            .split(' ')
            .find_map(|t| t.strip_prefix(&format!("{name}=")))
            .unwrap_or_else(|| panic!("missing {name} in {reply:?}"))
            .parse()
            .expect("numeric stats field")
    };
    Stats {
        coalesced: field("coalesced"),
        negative_hits: field("negative_hits"),
        negative_inserts: field("negative_inserts"),
        computes: field("computes"),
    }
}

fn start_server(points: &[Point], coalesce: bool) -> ServerHandle {
    let table =
        Table::build(points.to_vec(), TableConfig::default()).expect("bench table is valid");
    let config = ServiceConfig { coalesce, ..ServiceConfig::default() };
    serve(table, config, "127.0.0.1:0").expect("bind loopback server")
}

/// Runs `clients` threads striding `queries`; returns (qps, p50µs, p99µs).
fn drive(addr: SocketAddr, clients: usize, queries: &[String], rounds: usize) -> (f64, u64, u64) {
    let start = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|worker| {
                s.spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut lat = Vec::with_capacity(rounds * queries.len() / clients + 1);
                    for _ in 0..rounds {
                        // All clients walk the same list (offset by their
                        // index), so identical queries overlap in flight.
                        for line in queries.iter().cycle().skip(worker).take(queries.len()) {
                            let t = Instant::now();
                            client.roundtrip(line);
                            lat.push(t.elapsed().as_micros() as u64);
                        }
                    }
                    client.roundtrip("QUIT");
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("bench client")).collect()
    });
    let wall = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let pct = |p: usize| latencies[(latencies.len() - 1) * p / 100];
    ((latencies.len() as f64 / wall).max(0.0), pct(50), pct(99))
}

/// One load-matrix row as both a table line and a JSON object.
struct Run {
    clients: usize,
    coalesce: bool,
    qps: f64,
    p50_us: u64,
    p99_us: u64,
    stats: Stats,
}

impl Run {
    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"clients\": {}, \"coalesce\": {}, \"qps\": {:.1}, ",
                "\"p50_us\": {}, \"p99_us\": {}, \"coalesced\": {}, ",
                "\"negative_hits\": {}, \"negative_inserts\": {}, \"computes\": {}}}"
            ),
            self.clients,
            self.coalesce,
            self.qps,
            self.p50_us,
            self.p99_us,
            self.stats.coalesced,
            self.stats.negative_hits,
            self.stats.negative_inserts,
            self.stats.computes,
        )
    }
}

/// `repro serve` entry point.
///
/// # Panics
/// Panics if the server misbehaves or the coalesce burst never joins a
/// flight (which would make the dedup numbers in the artifact vacuous).
pub fn serve_bench(scale: &Scale) {
    let n = scale.mid_n / 4;
    let dims = 3;
    let gen = skycache_datagen::SyntheticGen::new(Distribution::Independent, dims, SEED);
    let points = gen.generate(n);
    let table = Table::build(points.clone(), TableConfig::default()).expect("bench table");
    let queries: Vec<String> = interactive_queries(&table, scale.interactive_queries, SEED, None)
        .iter()
        .map(query_line)
        .collect();
    drop(table);

    // ---- Phase 1: load matrix --------------------------------------
    print_header(
        &format!("serve: loopback load, {} points, {} queries", fmt_size(n), queries.len()),
        &["clients", "coalesce", "qps", "p50", "p99", "joined", "neg-hits"].map(String::from),
    );
    let mut runs = Vec::new();
    for coalesce in [true, false] {
        for clients in CLIENTS {
            let server = start_server(&points, coalesce);
            let addr = server.addr();
            let (qps, p50_us, p99_us) = drive(addr, clients, &queries, 2);
            let stats = fetch_stats(addr);
            server.shutdown().expect("clean shutdown");
            print_row(
                "",
                &[
                    clients.to_string(),
                    coalesce.to_string(),
                    format!("{qps:.0}"),
                    format!("{p50_us}us"),
                    format!("{p99_us}us"),
                    stats.coalesced.to_string(),
                    stats.negative_hits.to_string(),
                ],
            );
            runs.push(Run { clients, coalesce, qps, p50_us, p99_us, stats });
        }
    }

    // ---- Phase 2: coalesce burst -----------------------------------
    // Each round: a fresh, expensive (wide-region) query fired by all
    // clients at a barrier. Anti-correlated data maximizes the skyline
    // work, and result caching is off so every round recomputes from
    // scratch instead of refining the previous round's cached item —
    // the leader's compute window stays wide enough to span the other
    // arrivals even on a loaded host, and the assertion below keeps the
    // artifact honest.
    let burst_points =
        skycache_datagen::SyntheticGen::new(Distribution::AntiCorrelated, dims, SEED).generate(n);
    let burst_table =
        Table::build(burst_points, TableConfig::default()).expect("bench table is valid");
    let burst_cbcs = CbcsConfig { cache_results: false, ..CbcsConfig::default() };
    let burst_config = ServiceConfig::with_cbcs(burst_cbcs);
    let server = serve(burst_table, burst_config, "127.0.0.1:0").expect("bind loopback server");
    let addr = server.addr();
    let barrier = Barrier::new(BURST_CLIENTS);
    std::thread::scope(|s| {
        let barrier = &barrier;
        for _ in 0..BURST_CLIENTS {
            s.spawn(move || {
                let mut client = Client::connect(addr);
                for round in 0..BURST_ROUNDS {
                    let hi = 0.90 + round as f64 * 0.001;
                    let line = format!("Q 0 {hi} 0 {hi} 0 {hi}");
                    barrier.wait();
                    client.roundtrip(&line);
                }
                client.roundtrip("QUIT");
            });
        }
    });
    let burst = fetch_stats(addr);
    server.shutdown().expect("clean shutdown");
    println!(
        "\nserve: coalesce burst — {} clients x {} rounds: {} joined, {} computed",
        BURST_CLIENTS, BURST_ROUNDS, burst.coalesced, burst.computes
    );
    assert!(
        burst.coalesced > 0,
        "no burst query ever joined a flight — singleflight dedup is not engaging"
    );

    // ---- Phase 3: read scaling over a warm cache -------------------
    let server = start_server(&points, true);
    let addr = server.addr();
    {
        let mut warm = Client::connect(addr);
        for line in &queries {
            warm.roundtrip(line);
        }
        warm.roundtrip("QUIT");
    }
    let mut scaling = Vec::new();
    println!("\nserve: warm-cache read scaling");
    for clients in CLIENTS {
        let (qps, _, p99_us) = drive(addr, clients, &queries, 2);
        println!("  {clients} client(s): {qps:.0} qps (p99 {p99_us}us)");
        scaling.push(format!("    {{\"clients\": {clients}, \"qps\": {qps:.1}}}"));
    }
    server.shutdown().expect("clean shutdown");

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"skyserve-bench/1\",\n",
            "  \"points\": {},\n",
            "  \"dims\": {},\n",
            "  \"seed\": {},\n",
            "  \"queries\": {},\n",
            "  \"cores\": {},\n",
            "  \"runs\": [\n{}\n  ],\n",
            "  \"burst\": {{\"clients\": {}, \"rounds\": {}, \"coalesced\": {}, ",
            "\"computes\": {}}},\n",
            "  \"read_scaling\": [\n{}\n  ]\n",
            "}}\n"
        ),
        n,
        dims,
        SEED,
        queries.len(),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        runs.iter().map(Run::json).collect::<Vec<_>>().join(",\n"),
        BURST_CLIENTS,
        BURST_ROUNDS,
        burst.coalesced,
        burst.computes,
        scaling.join(",\n"),
    );
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => println!("wrote BENCH_serve.json"),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_lines_serialize_bounds_in_order() {
        let c = Constraints::from_pairs(&[(0.25, 0.75), (0.0, 1.0)]).unwrap();
        assert_eq!(query_line(&c), "Q 0.25 0.75 0 1");
    }

    #[test]
    fn run_rows_emit_the_schema_fields() {
        let run = Run {
            clients: 4,
            coalesce: true,
            qps: 1234.5,
            p50_us: 80,
            p99_us: 900,
            stats: Stats { coalesced: 3, negative_hits: 2, negative_inserts: 1, computes: 7 },
        };
        let json = run.json();
        for field in [
            "\"clients\": 4",
            "\"coalesce\": true",
            "\"qps\": 1234.5",
            "\"p50_us\": 80",
            "\"p99_us\": 900",
            "\"coalesced\": 3",
            "\"negative_hits\": 2",
            "\"negative_inserts\": 1",
            "\"computes\": 7",
        ] {
            assert!(json.contains(field), "{field} missing from {json}");
        }
    }
}
