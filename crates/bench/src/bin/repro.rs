//! Regenerates the paper's evaluation figures as text tables.
//!
//! ```text
//! cargo run --release -p skycache-bench --bin repro -- all
//! cargo run --release -p skycache-bench --bin repro -- fig5 fig9
//! cargo run --release -p skycache-bench --bin repro -- --full fig5   # paper sizes (hours)
//! ```

use std::process::ExitCode;

use skycache_bench::figures::{self, Scale};

const USAGE: &str = "usage: repro [--full] <experiment>...
experiments:
  fig5   runtime vs dataset size, |D|=5, 3 distributions
  fig6   runtime vs dataset size, |D|=3, with exact MPR
  fig7   runtime vs dimensionality (6..10)
  fig8   avg points read vs dataset size (|D|=5 and |D|=3)
  fig9   avg range queries generated vs dimensionality (|S|=5k)
  fig10  avg ms per stage (processing / fetching / skyline)
  fig11  cache search strategies (interactive + independent)
  fig12  real-estate dataset (interactive + independent)
  ablation-replacement   LRU vs LCU under small capacities
  ablation-k             aMPR nearest-neighbor sweep
  ablation-multi         multi-item cache exploitation (Sec 6.3 extension)
  parallel               sequential vs parallel pipeline (writes BENCH_parallel.json)
  obs                    per-phase latency + cache/fetch aggregates (writes BENCH_obs.json)
  perf                   block path vs legacy: qps, allocs/query, coalescing (writes BENCH_perf.json)
  policy                 replacement policies x compositional hits, incl. Zipf workload (writes BENCH_policy.json)
  check                  skycheck model-check stats for the shared-cache protocol (writes BENCH_check.json)
  serve                  TCP server under concurrent load: qps/p99, coalescing, read scaling (writes BENCH_serve.json)
  all    everything above";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let wanted: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    if wanted.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    let scale = if full { Scale::full() } else { Scale::default() };
    println!(
        "# skycache repro — {} scale{}",
        if full { "paper (full)" } else { "reduced (default)" },
        if full { "; expect hours, as in the original evaluation" } else { "" },
    );

    let all = wanted.contains(&"all");
    let want = |name: &str| all || wanted.contains(&name);
    let mut ran = false;

    for (name, runner) in [
        ("fig5", figures::fig5 as fn(&Scale)),
        ("fig6", figures::fig6),
        ("fig7", figures::fig7),
        ("fig8", figures::fig8),
        ("fig9", figures::fig9),
        ("fig10", figures::fig10),
        ("fig11", figures::fig11),
        ("fig12", figures::fig12),
        ("ablation-replacement", figures::ablation_replacement),
        ("ablation-k", figures::ablation_k),
        ("ablation-multi", figures::ablation_multi),
        ("parallel", figures::parallel),
        ("obs", figures::obs),
        ("perf", figures::perf),
        ("policy", figures::policy),
        ("check", skycache_bench::check::check),
        ("serve", skycache_bench::serve::serve_bench),
    ] {
        if want(name) {
            runner(&scale);
            ran = true;
        }
    }

    if !ran {
        eprintln!("unknown experiment(s): {wanted:?}\n{USAGE}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
