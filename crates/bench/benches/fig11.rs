//! Figure 11 (criterion): cache search strategies — both the selection
//! cost over a large candidate set and a small end-to-end workload pass
//! per strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rand::rngs::StdRng;
use rand::SeedableRng;

use skycache_bench::{interactive_queries, run_queries, synthetic_table};
use skycache_core::{Cache, CbcsConfig, CbcsExecutor, MprMode, SearchStrategy};
use skycache_geom::{Aabb, Constraints, Point};

fn strategies() -> Vec<SearchStrategy> {
    vec![
        SearchStrategy::Random,
        SearchStrategy::MaxOverlap,
        SearchStrategy::MaxOverlapSP,
        SearchStrategy::Prioritized1D,
        SearchStrategy::prioritized_nd_std(),
        SearchStrategy::OptimumDistance,
    ]
}

fn bench_selection(c: &mut Criterion) {
    // A cache with 500 items; selection must scan them all.
    let mut cache = Cache::new(3);
    let mut x = 0.17f64;
    for _ in 0..500 {
        x = (x * 97.31).fract();
        let lo = [x * 0.5, (x * 57.17).fract() * 0.5, (x * 31.73).fract() * 0.5];
        let cc = Constraints::from_pairs(&[
            (lo[0], lo[0] + 0.4),
            (lo[1], lo[1] + 0.4),
            (lo[2], lo[2] + 0.4),
        ])
        .unwrap();
        let sky = vec![Point::from(vec![lo[0] + 0.05, lo[1] + 0.05, lo[2] + 0.05])];
        cache.insert(cc, &sky);
    }
    let query = Constraints::from_pairs(&[(0.2, 0.6); 3]).unwrap();
    let bounds = Aabb::new(vec![0.0; 3], vec![1.0; 3]).unwrap();
    let candidates = cache.overlapping(&query);

    let mut group = c.benchmark_group("fig11_selection");
    for strategy in strategies() {
        group.bench_with_input(BenchmarkId::new("select", strategy.label()), &strategy, |b, s| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| s.select(&candidates, &query, &bounds, &mut rng))
        });
    }
    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    let table = synthetic_table(skycache_datagen::Distribution::Independent, 5, 30_000, 42);
    let queries = interactive_queries(&table, 40, 17, None);

    let mut group = c.benchmark_group("fig11_workload");
    group.sample_size(10);
    for strategy in strategies() {
        group.bench_with_input(
            BenchmarkId::new("interactive", strategy.label()),
            &strategy,
            |b, s| {
                b.iter(|| {
                    let config = CbcsConfig {
                        mpr: MprMode::Approximate { k: 1 },
                        strategy: s.clone(),
                        ..Default::default()
                    };
                    let mut ex = CbcsExecutor::new(&table, config);
                    run_queries(&mut ex, &queries)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_selection, bench_workload);
criterion_main!(benches);
