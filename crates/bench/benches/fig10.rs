//! Figure 10 (criterion): the three pipeline stages in isolation —
//! processing (query planning / MPR), fetching (storage execution), and
//! skyline computation (SFS) — on the Figure-10 configuration.

use criterion::{criterion_group, criterion_main, Criterion};

use skycache_algos::{Sfs, SkylineAlgorithm};
use skycache_bench::synthetic_table;
use skycache_core::{cases, MprMode};
use skycache_datagen::Distribution;
use skycache_geom::{Constraints, Point, PointBlock};
use skycache_storage::FetchPlan;

fn bench_fig10(c: &mut Criterion) {
    let table = synthetic_table(Distribution::Independent, 3, 100_000, 42);
    let old = Constraints::from_pairs(&[(0.2, 0.7); 3]).unwrap();
    let new = Constraints::from_pairs(&[(0.25, 0.7), (0.2, 0.7), (0.2, 0.7)]).unwrap();
    let cached: PointBlock = {
        let fetched = table.fetch_plan(&FetchPlan::constrained(&old));
        let sky = Sfs.compute(fetched.rows.into_iter().map(|r| r.point).collect()).skyline;
        PointBlock::from_points(&sky).unwrap()
    };

    let mut group = c.benchmark_group("fig10_stages");
    group.sample_size(20);

    group.bench_function("processing_plan_case4", |b| {
        b.iter(|| cases::plan(&old, &cached, &new, MprMode::Approximate { k: 1 }))
    });

    let plan = cases::plan(&old, &cached, &new, MprMode::Approximate { k: 1 });
    group.bench_function("fetching_mpr_regions", |b| {
        b.iter(|| table.fetch_plan(&FetchPlan::new(plan.regions.clone())))
    });

    group.bench_function("fetching_baseline_region", |b| {
        b.iter(|| table.fetch_plan(&FetchPlan::constrained(&new)))
    });

    let baseline_input: Vec<Point> =
        table.fetch_plan(&FetchPlan::constrained(&new)).rows.into_iter().map(|r| r.point).collect();
    group.bench_function("skyline_sfs_baseline_input", |b| {
        b.iter(|| Sfs.compute(baseline_input.clone()))
    });

    let merged: Vec<Point> = plan
        .retained
        .to_points()
        .into_iter()
        .chain(
            table
                .fetch_plan(&FetchPlan::new(plan.regions.clone()))
                .rows
                .into_iter()
                .map(|r| r.point),
        )
        .collect();
    group.bench_function("skyline_sfs_mpr_input", |b| b.iter(|| Sfs.compute(merged.clone())));

    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
