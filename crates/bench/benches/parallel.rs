//! Sequential vs parallel execution: the `ParallelDc` skyline kernel
//! against SFS across cardinality/dimensionality/lanes, the lane-parallel
//! batch fetch against the sequential one, and the end-to-end CBCS
//! pipeline under both `ExecMode`s. The `repro parallel` experiment
//! records the same comparison to `BENCH_parallel.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use skycache_algos::{ParallelDc, Sfs, SkylineAlgorithm};
use skycache_bench::{interactive_queries, synthetic_table};
use skycache_core::{CbcsConfig, CbcsExecutor, ExecMode, Executor, MprMode, QueryRequest};
use skycache_datagen::{Distribution, SyntheticGen};
use skycache_geom::HyperRect;
use skycache_storage::FetchPlan;

fn bench_skyline_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_skyline");
    group.sample_size(10);
    for (n, dims) in [(50_000usize, 5usize), (100_000, 5)] {
        let points = SyntheticGen::new(Distribution::Independent, dims, 42).generate(n);
        let label = format!("{n}x{dims}d");
        group.bench_with_input(BenchmarkId::new("sfs", &label), &points, |b, pts| {
            b.iter(|| Sfs.compute(pts.clone()))
        });
        for lanes in [2usize, 4, 8] {
            let algo = ParallelDc { threads: lanes, sequential_threshold: 4096 };
            group.bench_with_input(
                BenchmarkId::new(format!("pardc_{lanes}"), &label),
                &points,
                |b, pts| b.iter(|| algo.compute(pts.clone())),
            );
        }
    }
    group.finish();
}

fn bench_batch_fetch(c: &mut Criterion) {
    let table = synthetic_table(Distribution::Independent, 4, 100_000, 42);
    // Disjoint slabs along dimension 0, like an MPR decomposition.
    let regions: Vec<HyperRect> = (0..8)
        .map(|i| {
            let lo = i as f64 * 0.1;
            let mut lows = vec![0.2; 4];
            let mut highs = vec![0.7; 4];
            lows[0] = lo;
            highs[0] = lo + 0.1;
            HyperRect::closed(&lows, &highs)
        })
        .collect();

    let mut group = c.benchmark_group("parallel_fetch");
    group.sample_size(20);
    group.bench_function("sequential_8_regions", |b| {
        b.iter(|| table.fetch_plan(&FetchPlan::new(regions.clone())))
    });
    for lanes in [2usize, 4, 8] {
        group.bench_function(format!("parallel_8_regions_{lanes}_lanes"), |b| {
            b.iter(|| table.fetch_plan(&FetchPlan::new(regions.clone()).with_lanes(lanes)))
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let table = synthetic_table(Distribution::Independent, 5, 50_000, 42);
    let queries = interactive_queries(&table, 40, 17, None);

    let mut group = c.benchmark_group("parallel_pipeline");
    group.sample_size(10);
    for (label, exec) in [
        ("sequential", ExecMode::Sequential),
        ("parallel", ExecMode::Parallel { lanes: 4, dc_threshold: 4096 }),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = CbcsConfig { mpr: MprMode::Exact, exec, ..Default::default() };
                let mut ex = CbcsExecutor::new(&table, config);
                for q in &queries {
                    std::hint::black_box(
                        ex.execute(&QueryRequest::new(q.clone()))
                            .expect("benchmark query succeeds"),
                    );
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skyline_kernels, bench_batch_fetch, bench_end_to_end);
criterion_main!(benches);
