//! Component microbenchmarks: the substrates underneath the figures —
//! skyline algorithms, R\*-tree operations, storage range execution, and
//! the geometric kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use skycache_algos::{Bnl, DivideConquer, Sfs, SkylineAlgorithm};
use skycache_bench::synthetic_table;
use skycache_datagen::{Distribution, SyntheticGen};
use skycache_geom::subtract::subtract_box;
use skycache_geom::{Aabb, Constraints, HyperRect, Point};
use skycache_rtree::{RStarTree, RTreeParams};
use skycache_storage::FetchPlan;

fn bench_skyline_algos(c: &mut Criterion) {
    let mut group = c.benchmark_group("skyline_algorithms");
    group.sample_size(10);
    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        let points = SyntheticGen::new(dist, 4, 42).generate(20_000);
        for (name, algo) in
            [("bnl", &Bnl as &dyn SkylineAlgorithm), ("sfs", &Sfs), ("dc", &DivideConquer)]
        {
            group.bench_with_input(BenchmarkId::new(name, dist.label()), &points, |b, pts| {
                b.iter(|| algo.compute(pts.clone()))
            });
        }
    }
    group.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let points: Vec<(Point, u32)> = SyntheticGen::new(Distribution::Independent, 3, 7)
        .generate(50_000)
        .into_iter()
        .zip(0..)
        .collect();

    let mut group = c.benchmark_group("rtree");
    group.sample_size(10);

    group.bench_function("bulk_load_50k", |b| {
        b.iter(|| RStarTree::bulk_load_points(points.clone(), RTreeParams::default()))
    });

    group.bench_function("insert_5k", |b| {
        b.iter(|| {
            let mut t = RStarTree::new(3);
            for (p, v) in points.iter().take(5_000) {
                t.insert(Aabb::from_point(p), *v);
            }
            t
        })
    });

    let tree = RStarTree::bulk_load_points(points.clone(), RTreeParams::default());
    let window = Aabb::new(vec![0.2; 3], vec![0.5; 3]).unwrap();
    group.bench_function("window_query", |b| b.iter(|| tree.search(&window).len()));
    group.bench_function("knn_10", |b| b.iter(|| tree.nearest_k(&[0.3, 0.3, 0.3], 10)));
    group.finish();
}

fn bench_storage(c: &mut Criterion) {
    let table = synthetic_table(Distribution::Independent, 4, 100_000, 42);
    let constraints = Constraints::from_pairs(&[(0.3, 0.6); 4]).unwrap();

    let mut group = c.benchmark_group("storage");
    group.sample_size(20);
    group.bench_function("range_query_4d", |b| {
        b.iter(|| table.fetch_plan(&FetchPlan::constrained(&constraints)))
    });
    // Empty-query detection must be near-free.
    let empty = Constraints::from_pairs(&[(2.0, 3.0); 4]).unwrap();
    group.bench_function("empty_query_detection", |b| {
        b.iter(|| table.fetch_plan(&FetchPlan::constrained(&empty)))
    });
    group.finish();
}

fn bench_geom(c: &mut Criterion) {
    let rect = HyperRect::closed(&[0.0; 6], &[1.0; 6]);
    let cut = Aabb::new(vec![0.3; 6], vec![0.8; 6]).unwrap();
    let mut group = c.benchmark_group("geom");
    group.bench_function("subtract_box_6d", |b| b.iter(|| subtract_box(&rect, &cut)));
    group.finish();
}

criterion_group!(benches, bench_skyline_algos, bench_rtree, bench_storage, bench_geom);
criterion_main!(benches);
