//! Figure 12 (criterion): the real-estate workload per method, CPU cost
//! at reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use skycache_bench::{independent_queries, interactive_queries, real_estate_table, run_queries};
use skycache_core::{
    BaselineExecutor, BbsExecutor, CbcsConfig, CbcsExecutor, Executor, MprMode, QueryRequest,
    SearchStrategy,
};

fn bench_fig12(c: &mut Criterion) {
    let table = real_estate_table(50_000, 2005);

    let mut group = c.benchmark_group("fig12_real_estate");
    group.sample_size(10);

    // (a) interactive
    let queries = interactive_queries(&table, 40, 17, None);
    group.bench_function("interactive/baseline", |b| {
        b.iter(|| {
            let mut ex = BaselineExecutor::new(&table);
            run_queries(&mut ex, &queries)
        })
    });
    {
        let mut ex = BbsExecutor::new(&table);
        group.bench_function("interactive/bbs", |b| b.iter(|| run_queries(&mut ex, &queries)));
    }
    group.bench_function("interactive/ampr1", |b| {
        b.iter(|| {
            let config = CbcsConfig {
                mpr: MprMode::Approximate { k: 1 },
                strategy: SearchStrategy::MaxOverlapSP,
                ..Default::default()
            };
            let mut ex = CbcsExecutor::new(&table, config);
            run_queries(&mut ex, &queries)
        })
    });

    // (b) independent, preloaded cache, varying #NN.
    let preload = independent_queries(&table, 100, 5, None);
    let queries = independent_queries(&table, 25, 19, None);
    for k in [1usize, 5, 10] {
        group.bench_with_input(BenchmarkId::new("independent/ampr", k), &k, |b, &k| {
            b.iter(|| {
                let config = CbcsConfig {
                    mpr: MprMode::Approximate { k },
                    strategy: SearchStrategy::prioritized_nd_std(),
                    ..Default::default()
                };
                let mut ex = CbcsExecutor::new(&table, config);
                for c in &preload {
                    ex.execute(&QueryRequest::new(c.clone())).expect("preload succeeds");
                }
                run_queries(&mut ex, &queries)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
