//! Figure 9 (criterion): the MPR computation itself — range-query
//! generation cost for the exact MPR vs the aMPR with 1/3/6/10 nearest
//! neighbors as dimensionality grows (the paper's "just generating the
//! range queries took several hours" effect).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use skycache_algos::{Sfs, SkylineAlgorithm};
use skycache_core::{missing_points_region, MprMode};
use skycache_datagen::{Distribution, SyntheticGen};
use skycache_geom::{Constraints, PointBlock};

fn setup(d: usize) -> (Constraints, PointBlock, Constraints) {
    let points = SyntheticGen::new(Distribution::Independent, d, 42).generate(5_000);
    let old = Constraints::from_pairs(&vec![(0.2, 0.7); d]).unwrap();
    let mut pairs = vec![(0.2, 0.7); d];
    pairs[0] = (0.25, 0.8); // lower raised + upper raised: unstable general case
    let new = Constraints::from_pairs(&pairs).unwrap();
    let sky = Sfs.compute(points.into_iter().filter(|p| old.satisfies(p)).collect()).skyline;
    let cached = PointBlock::from_points(&sky).unwrap();
    (old, cached, new)
}

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_mpr_generation");
    group.sample_size(10);

    for d in [2usize, 3, 4, 5] {
        let (old, cached, new) = setup(d);
        group.bench_with_input(BenchmarkId::new("mpr", d), &d, |b, _| {
            b.iter(|| missing_points_region(&old, &cached, &new, MprMode::Exact))
        });
        for k in [1usize, 3, 6, 10] {
            group.bench_with_input(BenchmarkId::new(format!("ampr{k}"), d), &d, |b, _| {
                b.iter(|| missing_points_region(&old, &cached, &new, MprMode::Approximate { k }))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
