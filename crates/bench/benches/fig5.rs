//! Figure 5 (criterion): CPU cost of answering the interactive 5-D
//! workload per method, at reduced scale. Wall-clock here excludes the
//! simulated I/O latency — run `repro fig5` for the end-to-end numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use skycache_bench::{interactive_queries, run_queries, synthetic_table};
use skycache_core::{
    BaselineExecutor, BbsExecutor, CbcsConfig, CbcsExecutor, MprMode, SearchStrategy,
};
use skycache_datagen::Distribution;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_interactive_5d");
    group.sample_size(10);

    for dist in [Distribution::Independent, Distribution::Correlated, Distribution::AntiCorrelated]
    {
        let table = synthetic_table(dist, 5, 30_000, 42);
        let queries = interactive_queries(&table, 40, 17, None);

        group.bench_with_input(BenchmarkId::new("baseline", dist.label()), &queries, |b, q| {
            b.iter(|| {
                let mut ex = BaselineExecutor::new(&table);
                run_queries(&mut ex, q)
            })
        });

        let bbs_table = table.clone();
        group.bench_with_input(BenchmarkId::new("bbs", dist.label()), &queries, |b, q| {
            // Tree construction amortized outside the timer.
            let mut ex = BbsExecutor::new(&bbs_table);
            b.iter(|| run_queries(&mut ex, q))
        });

        group.bench_with_input(BenchmarkId::new("ampr1", dist.label()), &queries, |b, q| {
            b.iter(|| {
                let config = CbcsConfig {
                    mpr: MprMode::Approximate { k: 1 },
                    strategy: SearchStrategy::MaxOverlapSP,
                    ..Default::default()
                };
                let mut ex = CbcsExecutor::new(&table, config);
                run_queries(&mut ex, q)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
