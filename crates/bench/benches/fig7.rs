//! Figure 7 (criterion): dimensionality scaling (5 constrained dims, the
//! rest unconstrained), CPU cost at reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use skycache_bench::{interactive_queries, run_queries, synthetic_table};
use skycache_core::{BaselineExecutor, CbcsConfig, CbcsExecutor, MprMode, SearchStrategy};
use skycache_datagen::Distribution;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_dimensionality");
    group.sample_size(10);

    for d in [6usize, 8, 10] {
        let table = synthetic_table(Distribution::Independent, d, 20_000, 42);
        let queries = interactive_queries(&table, 30, 17, Some(5));

        group.bench_with_input(BenchmarkId::new("baseline", d), &queries, |b, q| {
            b.iter(|| {
                let mut ex = BaselineExecutor::new(&table);
                run_queries(&mut ex, q)
            })
        });

        group.bench_with_input(BenchmarkId::new("ampr1", d), &queries, |b, q| {
            b.iter(|| {
                let config = CbcsConfig {
                    mpr: MprMode::Approximate { k: 1 },
                    strategy: SearchStrategy::MaxOverlapSP,
                    ..Default::default()
                };
                let mut ex = CbcsExecutor::new(&table, config);
                run_queries(&mut ex, q)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
