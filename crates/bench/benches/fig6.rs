//! Figure 6 (criterion): exact MPR vs aMPR vs Baseline vs BBS on 3-D
//! independent data, CPU cost at reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use skycache_bench::{interactive_queries, run_queries, synthetic_table};
use skycache_core::{
    BaselineExecutor, BbsExecutor, CbcsConfig, CbcsExecutor, MprMode, SearchStrategy,
};
use skycache_datagen::Distribution;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_interactive_3d");
    group.sample_size(10);

    for n in [20_000usize, 40_000] {
        let table = synthetic_table(Distribution::Independent, 3, n, 42);
        let queries = interactive_queries(&table, 40, 17, None);

        group.bench_with_input(BenchmarkId::new("baseline", n), &queries, |b, q| {
            b.iter(|| {
                let mut ex = BaselineExecutor::new(&table);
                run_queries(&mut ex, q)
            })
        });

        group.bench_with_input(BenchmarkId::new("bbs", n), &queries, |b, q| {
            let mut ex = BbsExecutor::new(&table);
            b.iter(|| run_queries(&mut ex, q))
        });

        for (label, mode) in [("mpr", MprMode::Exact), ("ampr1", MprMode::Approximate { k: 1 })] {
            group.bench_with_input(BenchmarkId::new(label, n), &queries, |b, q| {
                b.iter(|| {
                    let config = CbcsConfig {
                        mpr: mode,
                        strategy: SearchStrategy::MaxOverlapSP,
                        ..Default::default()
                    };
                    let mut ex = CbcsExecutor::new(&table, config);
                    run_queries(&mut ex, q)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
