//! Figure 8 (criterion): the fetch path itself — one big Baseline range
//! query vs the batch of small MPR range queries over the same storage.
//! (`repro fig8` prints the points-read counters the figure plots.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use skycache_bench::synthetic_table;
use skycache_core::{missing_points_region, MprMode};
use skycache_datagen::Distribution;
use skycache_geom::{Constraints, PointBlock};
use skycache_storage::FetchPlan;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_fetch_path");
    group.sample_size(20);

    for n in [50_000usize, 100_000] {
        let table = synthetic_table(Distribution::Independent, 3, n, 42);
        let old = Constraints::from_pairs(&[(0.2, 0.7); 3]).unwrap();
        let new = Constraints::from_pairs(&[(0.2, 0.8), (0.15, 0.7), (0.2, 0.7)]).unwrap();
        // Cached skyline for the old constraints, computed once.
        let cached: PointBlock = {
            let fetched = table.fetch_plan(&FetchPlan::constrained(&old));
            use skycache_algos::{Sfs, SkylineAlgorithm};
            let sky = Sfs.compute(fetched.rows.into_iter().map(|r| r.point).collect()).skyline;
            PointBlock::from_points(&sky).unwrap()
        };

        group.bench_with_input(BenchmarkId::new("baseline_fetch", n), &new, |b, q| {
            b.iter(|| table.fetch_plan(&FetchPlan::constrained(q)))
        });

        let exact = missing_points_region(&old, &cached, &new, MprMode::Exact);
        group.bench_with_input(
            BenchmarkId::new("mpr_fetch_batch", n),
            &exact.regions,
            |b, regions| b.iter(|| table.fetch_plan(&FetchPlan::new(regions.clone()))),
        );

        let approx = missing_points_region(&old, &cached, &new, MprMode::Approximate { k: 1 });
        group.bench_with_input(
            BenchmarkId::new("ampr_fetch_batch", n),
            &approx.regions,
            |b, regions| b.iter(|| table.fetch_plan(&FetchPlan::new(regions.clone()))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
