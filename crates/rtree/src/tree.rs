use skycache_geom::Aabb;

use crate::node::{ChildEntry, LeafEntry, Node};
use crate::split::rstar_split;

/// R\*-tree tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct RTreeParams {
    /// Maximum entries per node (`M`).
    pub max_entries: usize,
    /// Minimum entries per non-root node (`m`, typically 40% of `M`).
    pub min_entries: usize,
    /// Entries removed by one forced reinsertion (`p`, typically 30% of `M`).
    pub reinsert_count: usize,
}

impl Default for RTreeParams {
    fn default() -> Self {
        RTreeParams { max_entries: 32, min_entries: 12, reinsert_count: 9 }
    }
}

impl RTreeParams {
    fn validate(&self) {
        assert!(self.max_entries >= 4, "max_entries must be >= 4");
        assert!(
            self.min_entries >= 2 && 2 * self.min_entries <= self.max_entries,
            "need 2 <= min_entries <= max_entries/2"
        );
        assert!(
            self.reinsert_count >= 1 && self.reinsert_count <= self.max_entries - self.min_entries,
            "reinsert_count out of range"
        );
    }
}

/// An entry travelling through insertion/reinsertion machinery.
pub(crate) enum AnyEntry<T> {
    Leaf(LeafEntry<T>),
    Child(ChildEntry<T>),
}

impl<T> AnyEntry<T> {
    fn mbr(&self) -> &Aabb {
        match self {
            AnyEntry::Leaf(e) => &e.mbr,
            AnyEntry::Child(e) => &e.mbr,
        }
    }

    /// The level this entry must be inserted at: leaves at 0, a subtree one
    /// above its own level.
    fn target_level(&self) -> usize {
        match self {
            AnyEntry::Leaf(_) => 0,
            AnyEntry::Child(e) => e.child.level() + 1,
        }
    }
}

/// Structural diagnostics of an R\*-tree (see [`RStarTree::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TreeStats {
    /// Tree height (leaf root = 1).
    pub height: usize,
    /// Stored entries.
    pub entries: usize,
    /// Leaf node count.
    pub leaf_nodes: usize,
    /// Inner node count.
    pub inner_nodes: usize,
    /// Sum of per-leaf fill ratios (divide by `leaf_nodes` for the mean).
    pub leaf_fill_sum: f64,
    /// Total overlap volume between sibling MBRs.
    pub sibling_overlap_sum: f64,
    /// Number of sibling pairs inspected.
    pub sibling_pairs: usize,
}

impl TreeStats {
    /// Mean leaf fill ratio in `[0, 1]`.
    pub fn avg_leaf_fill(&self) -> f64 {
        if self.leaf_nodes == 0 {
            0.0
        } else {
            self.leaf_fill_sum / self.leaf_nodes as f64
        }
    }
}

/// An R\*-tree mapping bounding boxes to values.
#[derive(Clone, Debug)]
pub struct RStarTree<T> {
    pub(crate) root: Box<Node<T>>,
    params: RTreeParams,
    dims: usize,
    len: usize,
}

impl<T> RStarTree<T> {
    /// Creates an empty tree over `dims`-dimensional boxes.
    ///
    /// # Panics
    /// Panics if `dims == 0` or the parameters are inconsistent.
    pub fn new(dims: usize) -> Self {
        Self::with_params(dims, RTreeParams::default())
    }

    /// Creates an empty tree with explicit parameters.
    pub fn with_params(dims: usize, params: RTreeParams) -> Self {
        assert!(dims > 0, "zero-dimensional tree");
        params.validate();
        RStarTree { root: Box::new(Node::Leaf(Vec::new())), params, dims, len: 0 }
    }

    pub(crate) fn from_root(
        root: Box<Node<T>>,
        params: RTreeParams,
        dims: usize,
        len: usize,
    ) -> Self {
        RStarTree { root, params, dims, len }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of stored boxes.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Tree parameters.
    pub fn params(&self) -> &RTreeParams {
        &self.params
    }

    /// Height of the tree (a lone leaf root has height 1).
    pub fn height(&self) -> usize {
        self.root.level() + 1
    }

    /// Bounding box of the whole tree, `None` when empty.
    pub fn mbr(&self) -> Option<Aabb> {
        self.root.mbr()
    }

    /// Inserts a value with its bounding box.
    ///
    /// # Panics
    /// Panics if `mbr` has the wrong dimensionality.
    pub fn insert(&mut self, mbr: Aabb, value: T) {
        assert_eq!(mbr.dims(), self.dims, "box/tree dimensionality mismatch");
        self.len += 1;
        // One forced-reinsert chance per level for this insertion.
        let mut reinserted = vec![false; self.root.level() + 1];
        let mut queue: Vec<AnyEntry<T>> = vec![AnyEntry::Leaf(LeafEntry { mbr, value })];
        while let Some(entry) = queue.pop() {
            self.insert_entry(entry, &mut queue, &mut reinserted);
        }
    }

    fn insert_entry(
        &mut self,
        entry: AnyEntry<T>,
        queue: &mut Vec<AnyEntry<T>>,
        reinserted: &mut Vec<bool>,
    ) {
        let target = entry.target_level();
        let params = self.params;
        let split = insert_impl(&mut self.root, entry, target, &params, queue, reinserted, true);
        if let Some(sibling) = split {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(&mut self.root, Box::new(Node::Leaf(Vec::new())));
            // skylint: allow(no-panic-paths) — a root that just split holds entries.
            let old_mbr = old_root.mbr().expect("split root is non-empty");
            let level = old_root.level() + 1;
            *self.root = Node::Inner {
                level,
                children: vec![ChildEntry { mbr: old_mbr, child: old_root }, sibling],
            };
            reinserted.resize(level + 1, false);
        }
    }

    /// Removes one entry whose box equals `mbr` and whose value satisfies
    /// `pred`, returning the value. Underflowing nodes are dissolved and
    /// their entries reinserted (the classic condense-tree step).
    pub fn remove(&mut self, mbr: &Aabb, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        assert_eq!(mbr.dims(), self.dims, "box/tree dimensionality mismatch");
        let mut orphans: Vec<AnyEntry<T>> = Vec::new();
        let removed = remove_impl(&mut self.root, mbr, &mut pred, &mut orphans, &self.params)?;
        self.len -= 1;

        // Shrink the root while it is a trivial chain.
        loop {
            let replace = match self.root.as_ref() {
                Node::Inner { children, .. } if children.len() == 1 => true,
                Node::Inner { children, .. } if children.is_empty() => {
                    *self.root = Node::Leaf(Vec::new());
                    false
                }
                _ => false,
            };
            if !replace {
                break;
            }
            if let Node::Inner { children, .. } = self.root.as_mut() {
                // skylint: allow(no-panic-paths) — guarded by len() == 1 just above.
                let only = children.pop().expect("one child");
                self.root = only.child;
            }
        }

        // Reinsert orphans at their original level; no forced reinserts.
        while let Some(entry) = orphans.pop() {
            let mut reinserted = vec![true; self.root.level() + 1];
            let mut queue = vec![entry];
            while let Some(e) = queue.pop() {
                self.insert_entry(e, &mut queue, &mut reinserted);
            }
        }
        Some(removed)
    }

    /// Visits every `(mbr, value)` whose box intersects `window`. The
    /// callback borrows from the tree, so results can be collected.
    pub fn for_each_in<'a>(&'a self, window: &Aabb, mut f: impl FnMut(&'a Aabb, &'a T)) {
        fn walk<'a, T>(node: &'a Node<T>, window: &Aabb, f: &mut impl FnMut(&'a Aabb, &'a T)) {
            match node {
                Node::Leaf(entries) => {
                    for e in entries {
                        if e.mbr.intersects(window) {
                            f(&e.mbr, &e.value);
                        }
                    }
                }
                Node::Inner { children, .. } => {
                    for c in children {
                        if c.mbr.intersects(window) {
                            walk(&c.child, window, f);
                        }
                    }
                }
            }
        }
        walk(&self.root, window, &mut f);
    }

    /// Values whose box intersects `window`.
    pub fn search(&self, window: &Aabb) -> Vec<&T> {
        let mut out = Vec::new();
        self.for_each_in(window, |_, v| out.push(v));
        out
    }

    /// Iterates over all values.
    pub fn iter(&self) -> impl Iterator<Item = (&Aabb, &T)> {
        let mut out = Vec::with_capacity(self.len);
        fn walk<'a, T>(node: &'a Node<T>, out: &mut Vec<(&'a Aabb, &'a T)>) {
            match node {
                Node::Leaf(entries) => out.extend(entries.iter().map(|e| (&e.mbr, &e.value))),
                Node::Inner { children, .. } => {
                    for c in children {
                        walk(&c.child, out);
                    }
                }
            }
        }
        walk(&self.root, &mut out);
        out.into_iter()
    }

    /// Diagnostic statistics of the tree's structure — useful for
    /// understanding why BBS degrades with dimensionality (sibling MBR
    /// overlap grows, so constraint pruning keeps fewer subtrees out).
    pub fn stats(&self) -> TreeStats {
        let mut stats =
            TreeStats { height: self.height(), entries: self.len(), ..Default::default() };
        fn walk<T>(node: &Node<T>, s: &mut TreeStats, max_entries: usize) {
            match node {
                Node::Leaf(entries) => {
                    s.leaf_nodes += 1;
                    s.leaf_fill_sum += entries.len() as f64 / max_entries as f64;
                }
                Node::Inner { children, .. } => {
                    s.inner_nodes += 1;
                    // Pairwise sibling overlap, normalized by node area.
                    for (i, a) in children.iter().enumerate() {
                        for b in &children[i + 1..] {
                            s.sibling_overlap_sum += a.mbr.overlap_area(&b.mbr);
                            s.sibling_pairs += 1;
                        }
                    }
                    for c in children {
                        walk(&c.child, s, max_entries);
                    }
                }
            }
        }
        walk(&self.root, &mut stats, self.params.max_entries);
        stats
    }

    /// Structural invariant check for tests: uniform leaf depth, tight and
    /// containing MBRs, fill factors within `[min, max]` except the root.
    ///
    /// # Panics
    /// Panics on any violation.
    pub fn check_invariants(&self) {
        fn walk<T>(
            node: &Node<T>,
            expected_level: usize,
            is_root: bool,
            params: &RTreeParams,
            count: &mut usize,
        ) -> Option<Aabb> {
            assert_eq!(node.level(), expected_level, "level mismatch");
            if !is_root {
                assert!(node.len() >= params.min_entries, "underfull node");
            }
            assert!(node.len() <= params.max_entries, "overfull node");
            match node {
                Node::Leaf(entries) => {
                    *count += entries.len();
                    node.mbr()
                }
                Node::Inner { children, .. } => {
                    assert!(!children.is_empty() || is_root, "empty inner node");
                    for c in children {
                        let child_mbr = walk(&c.child, expected_level - 1, false, params, count)
                            // skylint: allow(no-panic-paths) — invariant checker; panics are its job.
                            .expect("non-root nodes are non-empty");
                        assert_eq!(c.mbr, child_mbr, "stored child MBR not tight");
                    }
                    node.mbr()
                }
            }
        }
        let mut count = 0usize;
        let level = self.root.level();
        walk(&self.root, level, true, &self.params, &mut count);
        assert_eq!(count, self.len, "len out of sync");
    }
}

/// Chooses the child of `children` best suited to receive `mbr`.
///
/// R\* rule: when the children are leaves, minimize overlap enlargement
/// (ties: area enlargement, then area); above the leaf level, minimize
/// area enlargement (ties: area).
fn choose_subtree<T>(children: &[ChildEntry<T>], mbr: &Aabb) -> usize {
    debug_assert!(!children.is_empty());
    let children_are_leaves = children[0].child.level() == 0;
    if children_are_leaves {
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, c) in children.iter().enumerate() {
            let enlarged = c.mbr.union(mbr);
            let overlap_before: f64 = children
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, o)| c.mbr.overlap_area(&o.mbr))
                .sum();
            let overlap_after: f64 = children
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, o)| enlarged.overlap_area(&o.mbr))
                .sum();
            let key =
                (overlap_after - overlap_before, enlarged.area() - c.mbr.area(), c.mbr.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    } else {
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for (i, c) in children.iter().enumerate() {
            let enlarged = c.mbr.union(mbr);
            let key = (enlarged.area() - c.mbr.area(), c.mbr.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }
}

/// Recursive insertion. Returns a split-off sibling for the caller to
/// adopt, if the node overflowed and split.
fn insert_impl<T>(
    node: &mut Node<T>,
    entry: AnyEntry<T>,
    target_level: usize,
    params: &RTreeParams,
    queue: &mut Vec<AnyEntry<T>>,
    reinserted: &mut [bool],
    is_root: bool,
) -> Option<ChildEntry<T>> {
    if node.level() == target_level {
        match (node, entry) {
            (Node::Leaf(entries), AnyEntry::Leaf(e)) => {
                entries.push(e);
                if entries.len() > params.max_entries {
                    return overflow_leaf(entries, 0, params, queue, reinserted, is_root);
                }
            }
            (Node::Inner { level, children }, AnyEntry::Child(e)) => {
                children.push(e);
                if children.len() > params.max_entries {
                    return overflow_inner(children, *level, params, queue, reinserted, is_root);
                }
            }
            _ => unreachable!("entry kind always matches target level"),
        }
        return None;
    }

    let Node::Inner { level, children } = node else {
        unreachable!("descent cannot pass the leaf level")
    };
    let level = *level;
    let idx = choose_subtree(children, entry.mbr());
    let split = insert_impl(
        &mut children[idx].child,
        entry,
        target_level,
        params,
        queue,
        reinserted,
        false,
    );
    // Recompute the child MBR: it may have grown (insert) or shrunk
    // (forced reinsertion removed entries).
    children[idx].mbr = children[idx]
        .child
        .mbr()
        // skylint: allow(no-panic-paths) — children keep >= min entries during insertion.
        .expect("children keep >= min entries during insertion");
    if let Some(sibling) = split {
        children.push(sibling);
        if children.len() > params.max_entries {
            return overflow_inner(children, level, params, queue, reinserted, is_root);
        }
    }
    None
}

/// R\* OverflowTreatment for a leaf node.
fn overflow_leaf<T>(
    entries: &mut Vec<LeafEntry<T>>,
    level: usize,
    params: &RTreeParams,
    queue: &mut Vec<AnyEntry<T>>,
    reinserted: &mut [bool],
    is_root: bool,
) -> Option<ChildEntry<T>> {
    if !is_root && level < reinserted.len() && !reinserted[level] {
        reinserted[level] = true;
        for e in strip_farthest(entries, params.reinsert_count) {
            queue.push(AnyEntry::Leaf(e));
        }
        return None;
    }
    let all = std::mem::take(entries);
    let (keep, split) = rstar_split(all, params.min_entries);
    *entries = keep;
    let sibling = Node::Leaf(split);
    // skylint: allow(no-panic-paths) — rstar_split emits two non-empty groups.
    let mbr = sibling.mbr().expect("split group is non-empty");
    Some(ChildEntry { mbr, child: Box::new(sibling) })
}

/// R\* OverflowTreatment for an inner node.
fn overflow_inner<T>(
    children: &mut Vec<ChildEntry<T>>,
    level: usize,
    params: &RTreeParams,
    queue: &mut Vec<AnyEntry<T>>,
    reinserted: &mut [bool],
    is_root: bool,
) -> Option<ChildEntry<T>> {
    if !is_root && level < reinserted.len() && !reinserted[level] {
        reinserted[level] = true;
        for e in strip_farthest(children, params.reinsert_count) {
            queue.push(AnyEntry::Child(e));
        }
        return None;
    }
    let all = std::mem::take(children);
    let (keep, split) = rstar_split(all, params.min_entries);
    *children = keep;
    let sibling = Node::Inner { level, children: split };
    // skylint: allow(no-panic-paths) — rstar_split emits two non-empty groups.
    let mbr = sibling.mbr().expect("split group is non-empty");
    Some(ChildEntry { mbr, child: Box::new(sibling) })
}

/// Removes the `count` entries whose centers are farthest from the node
/// center, returning them farthest-last (so close-in entries reinsert
/// first, per the paper's "close reinsert" variant).
fn strip_farthest<E: crate::split::HasMbr>(entries: &mut Vec<E>, count: usize) -> Vec<E> {
    let node_mbr = {
        let mut acc = entries[0].mbr().clone();
        for e in entries.iter().skip(1) {
            acc.merge(e.mbr());
        }
        acc
    };
    let center = node_mbr.center();
    let dist = |e: &E| -> f64 {
        e.mbr().center().iter().zip(&center).map(|(a, b)| (a - b) * (a - b)).sum()
    };
    entries.sort_by(|a, b| dist(a).total_cmp(&dist(b)));
    let at = entries.len() - count;
    entries.split_off(at)
}

/// Recursive removal with condense-tree. Returns the removed value.
fn remove_impl<T>(
    node: &mut Node<T>,
    mbr: &Aabb,
    pred: &mut impl FnMut(&T) -> bool,
    orphans: &mut Vec<AnyEntry<T>>,
    params: &RTreeParams,
) -> Option<T> {
    match node {
        Node::Leaf(entries) => {
            let idx = entries.iter().position(|e| e.mbr == *mbr && pred(&e.value))?;
            Some(entries.swap_remove(idx).value)
        }
        Node::Inner { children, .. } => {
            let mut removed = None;
            let mut child_idx = None;
            for (i, c) in children.iter_mut().enumerate() {
                if !c.mbr.contains_box(mbr) {
                    continue;
                }
                if let Some(v) = remove_impl(&mut c.child, mbr, pred, orphans, params) {
                    removed = Some(v);
                    child_idx = Some(i);
                    break;
                }
            }
            let i = child_idx?;
            if children[i].child.len() < params.min_entries {
                // Dissolve the underfull child; reinsert its entries.
                let dead = children.swap_remove(i);
                match *dead.child {
                    Node::Leaf(entries) => {
                        orphans.extend(entries.into_iter().map(AnyEntry::Leaf));
                    }
                    Node::Inner { children: grand, .. } => {
                        orphans.extend(grand.into_iter().map(AnyEntry::Child));
                    }
                }
            } else {
                // skylint: allow(no-panic-paths) — underfull children were drained above.
                children[i].mbr = children[i].child.mbr().expect("non-empty");
            }
            removed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycache_geom::Point;

    fn pt_box(x: f64, y: f64) -> Aabb {
        Aabb::from_point(&Point::from(vec![x, y]))
    }

    fn grid_tree(n: usize) -> RStarTree<usize> {
        let mut t = RStarTree::new(2);
        for i in 0..n {
            let x = (i % 37) as f64;
            let y = (i / 37) as f64;
            t.insert(pt_box(x, y), i);
        }
        t
    }

    #[test]
    fn insert_and_len() {
        let t = grid_tree(500);
        assert_eq!(t.len(), 500);
        assert!(t.height() >= 2);
        t.check_invariants();
    }

    #[test]
    fn window_query_matches_bruteforce() {
        let t = grid_tree(1000);
        let window = Aabb::new(vec![5.0, 3.0], vec![20.0, 11.0]).unwrap();
        let mut got: Vec<usize> = t.search(&window).into_iter().copied().collect();
        got.sort_unstable();
        let mut want: Vec<usize> = (0..1000)
            .filter(|i| {
                let (x, y) = ((i % 37) as f64, (i / 37) as f64);
                window.contains_point(&Point::from(vec![x, y]))
            })
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_tree_behaviour() {
        let t: RStarTree<u8> = RStarTree::new(3);
        assert!(t.is_empty());
        assert_eq!(t.mbr(), None);
        assert!(t.search(&Aabb::new(vec![0.0; 3], vec![1.0; 3]).unwrap()).is_empty());
        t.check_invariants();
    }

    #[test]
    fn remove_existing_entry() {
        let mut t = grid_tree(300);
        let removed = t.remove(&pt_box(5.0, 2.0), |&v| v == 5 + 2 * 37);
        assert_eq!(removed, Some(79));
        assert_eq!(t.len(), 299);
        t.check_invariants();
        // It is gone from queries.
        let hits = t.search(&pt_box(5.0, 2.0));
        assert!(!hits.contains(&&79));
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t = grid_tree(50);
        assert_eq!(t.remove(&pt_box(99.0, 99.0), |_| true), None);
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn remove_all_entries_one_by_one() {
        let mut t = grid_tree(200);
        for i in 0..200usize {
            let x = (i % 37) as f64;
            let y = (i / 37) as f64;
            assert_eq!(t.remove(&pt_box(x, y), |&v| v == i), Some(i), "removing {i}");
            t.check_invariants();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn duplicate_boxes_distinct_values() {
        let mut t = RStarTree::new(2);
        for i in 0..100 {
            t.insert(pt_box(1.0, 1.0), i);
        }
        t.check_invariants();
        assert_eq!(t.search(&pt_box(1.0, 1.0)).len(), 100);
        assert_eq!(t.remove(&pt_box(1.0, 1.0), |&v| v == 42), Some(42));
        assert_eq!(t.search(&pt_box(1.0, 1.0)).len(), 99);
    }

    #[test]
    fn iter_visits_everything() {
        let t = grid_tree(123);
        let mut vals: Vec<usize> = t.iter().map(|(_, &v)| v).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..123).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn insert_wrong_dims_panics() {
        let mut t: RStarTree<u8> = RStarTree::new(2);
        t.insert(Aabb::new(vec![0.0; 3], vec![1.0; 3]).unwrap(), 0);
    }

    #[test]
    fn stats_reflect_structure() {
        let t = grid_tree(1_000);
        let s = t.stats();
        assert_eq!(s.entries, 1_000);
        assert_eq!(s.height, t.height());
        assert!(s.leaf_nodes >= 1_000 / t.params().max_entries);
        let fill = s.avg_leaf_fill();
        assert!(fill > 0.3 && fill <= 1.0, "implausible leaf fill {fill}");
        // Bulk-loaded trees pack tighter than incrementally built ones.
        let bulk = RStarTree::bulk_load_points(
            (0..1_000usize)
                .map(|i| (skycache_geom::Point::from(vec![(i % 37) as f64, (i / 37) as f64]), i)),
            RTreeParams::default(),
        );
        assert!(bulk.stats().avg_leaf_fill() >= fill * 0.9);
        // Empty tree stats are all-zero except height.
        let empty: RStarTree<u8> = RStarTree::new(2);
        assert_eq!(empty.stats().entries, 0);
        assert_eq!(empty.stats().avg_leaf_fill(), 0.0);
    }

    #[test]
    fn params_validation() {
        let bad = RTreeParams { max_entries: 4, min_entries: 3, reinsert_count: 1 };
        let result = std::panic::catch_unwind(|| RStarTree::<u8>::with_params(2, bad));
        assert!(result.is_err());
    }
}
