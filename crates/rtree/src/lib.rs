//! An R\*-tree, built from scratch.
//!
//! Two roles in this workspace, mirroring the paper's experimental setup:
//!
//! 1. **BBS substrate** — the state-of-the-art constrained-skyline
//!    competitor BBS (Papadias et al.) runs a best-first traversal over an
//!    R-tree of the dataset (the paper used libspatialindex). Large trees
//!    are built with STR bulk loading ([`RStarTree::bulk_load`]); the
//!    traversal primitive is [`BestFirst`].
//! 2. **Cache index** — CBCS organizes its cache items "by an R\*-tree
//!    indexing the MBR of each cached skyline" (Section 6). That tree is
//!    small and dynamic: incremental [`insert`](RStarTree::insert) with
//!    forced reinsertion and [`remove`](RStarTree::remove) for cache
//!    eviction.
//!
//! The implementation follows Beckmann, Kriegel, Schneider & Seeger (1990):
//! `ChooseSubtree` minimizes overlap enlargement at the leaf level and area
//! enlargement above it; overflow triggers one forced reinsertion of the
//! 30% farthest entries per level per insertion, then the topological
//! split (axis by minimum margin sum, split index by minimum overlap).
//!
//! ```
//! use skycache_geom::{Aabb, Point};
//! use skycache_rtree::{RStarTree, RTreeParams};
//!
//! // Dynamic insertion (the cache index usage).
//! let mut tree = RStarTree::new(2);
//! for i in 0..100u32 {
//!     let p = Point::from(vec![f64::from(i % 10), f64::from(i / 10)]);
//!     tree.insert(Aabb::from_point(&p), i);
//! }
//! let window = Aabb::new(vec![2.0, 2.0], vec![4.0, 4.0]).unwrap();
//! assert_eq!(tree.search(&window).len(), 9);
//!
//! // Bulk loading (the BBS dataset-index usage).
//! let points = (0..1000u32).map(|i| {
//!     (Point::from(vec![f64::from(i % 37), f64::from(i % 53)]), i)
//! });
//! let bulk = RStarTree::bulk_load_points(points, RTreeParams::default());
//! let (d2, _nearest) = bulk.nearest_k(&[5.0, 5.0], 1)[0];
//! assert_eq!(d2, 0.0); // (5, 5) exists in the data
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(rust_2018_idioms)]

mod bulk;
mod node;
mod query;
mod split;
mod tree;

pub use query::{BestFirst, NodeRef, Popped};
pub use tree::{RStarTree, RTreeParams, TreeStats};
