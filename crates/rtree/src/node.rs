use skycache_geom::Aabb;

/// A data entry stored at the leaf level.
#[derive(Clone, Debug)]
pub(crate) struct LeafEntry<T> {
    pub mbr: Aabb,
    pub value: T,
}

/// A child pointer stored at inner levels.
#[derive(Clone, Debug)]
pub(crate) struct ChildEntry<T> {
    pub mbr: Aabb,
    pub child: Box<Node<T>>,
}

/// A tree node. All leaves sit at the same depth; `level` is 0 for leaves
/// and grows towards the root.
#[derive(Clone, Debug)]
pub(crate) enum Node<T> {
    Leaf(Vec<LeafEntry<T>>),
    Inner { level: usize, children: Vec<ChildEntry<T>> },
}

impl<T> Node<T> {
    pub fn level(&self) -> usize {
        match self {
            Node::Leaf(_) => 0,
            Node::Inner { level, .. } => *level,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Node::Leaf(entries) => entries.len(),
            Node::Inner { children, .. } => children.len(),
        }
    }

    /// Tight bounding box of the node's entries, `None` when empty.
    pub fn mbr(&self) -> Option<Aabb> {
        match self {
            Node::Leaf(entries) => {
                let mut it = entries.iter();
                let mut acc = it.next()?.mbr.clone();
                for e in it {
                    acc.merge(&e.mbr);
                }
                Some(acc)
            }
            Node::Inner { children, .. } => {
                let mut it = children.iter();
                let mut acc = it.next()?.mbr.clone();
                for c in it {
                    acc.merge(&c.mbr);
                }
                Some(acc)
            }
        }
    }
}
