//! The R\* topological split (Beckmann et al. 1990, §4.2).

use skycache_geom::Aabb;

use crate::node::{ChildEntry, LeafEntry, Node};

/// Anything with a minimum bounding rectangle — both entry kinds.
pub(crate) trait HasMbr {
    fn mbr(&self) -> &Aabb;
}

impl<T> HasMbr for LeafEntry<T> {
    fn mbr(&self) -> &Aabb {
        &self.mbr
    }
}

impl<T> HasMbr for ChildEntry<T> {
    fn mbr(&self) -> &Aabb {
        &self.mbr
    }
}

impl<T> HasMbr for Box<Node<T>> {
    fn mbr(&self) -> &Aabb {
        unreachable!("nodes are wrapped in ChildEntry before splitting")
    }
}

fn bounding<E: HasMbr>(entries: &[E]) -> Aabb {
    let mut acc = entries[0].mbr().clone();
    for e in &entries[1..] {
        acc.merge(e.mbr());
    }
    acc
}

/// Splits an overflowing entry list into two groups, each holding at least
/// `min` entries.
///
/// Axis choice: minimum sum of group margins over all distributions and
/// both sort orders (by lower and by upper coordinate). Distribution
/// choice on that axis: minimum overlap between the two group MBRs,
/// ties broken by minimum combined area.
pub(crate) fn rstar_split<E: HasMbr>(mut entries: Vec<E>, min: usize) -> (Vec<E>, Vec<E>) {
    let total = entries.len();
    assert!(total >= 2 * min, "split needs at least 2*min entries");
    let dims = entries[0].mbr().dims();

    // Pick the axis (and sort key) with minimal margin sum.
    let mut best_axis = 0usize;
    let mut best_by_upper = false;
    let mut best_margin = f64::INFINITY;
    for axis in 0..dims {
        for by_upper in [false, true] {
            sort_entries(&mut entries, axis, by_upper);
            let margin: f64 = distributions(total, min)
                .map(|k| bounding(&entries[..k]).margin() + bounding(&entries[k..]).margin())
                .sum();
            if margin < best_margin {
                best_margin = margin;
                best_axis = axis;
                best_by_upper = by_upper;
            }
        }
    }

    // Pick the distribution on that axis with minimal overlap (tie: area).
    sort_entries(&mut entries, best_axis, best_by_upper);
    let mut best_k = min;
    let mut best_overlap = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for k in distributions(total, min) {
        let (a, b) = (bounding(&entries[..k]), bounding(&entries[k..]));
        let overlap = a.overlap_area(&b);
        let area = a.area() + b.area();
        if overlap < best_overlap || (overlap == best_overlap && area < best_area) {
            best_overlap = overlap;
            best_area = area;
            best_k = k;
        }
    }

    let right = entries.split_off(best_k);
    (entries, right)
}

fn distributions(total: usize, min: usize) -> impl Iterator<Item = usize> {
    min..=(total - min)
}

fn sort_entries<E: HasMbr>(entries: &mut [E], axis: usize, by_upper: bool) {
    entries.sort_by(|a, b| {
        let (ka, kb) = if by_upper {
            (a.mbr().hi()[axis], b.mbr().hi()[axis])
        } else {
            (a.mbr().lo()[axis], b.mbr().lo()[axis])
        };
        ka.total_cmp(&kb)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(lo: [f64; 2], hi: [f64; 2]) -> LeafEntry<usize> {
        LeafEntry { mbr: Aabb::new(lo.to_vec(), hi.to_vec()).unwrap(), value: 0 }
    }

    #[test]
    fn split_separates_clusters() {
        // Two well-separated clusters of 3 points each must split cleanly.
        let entries = vec![
            leaf([0.0, 0.0], [1.0, 1.0]),
            leaf([0.5, 0.5], [1.5, 1.5]),
            leaf([0.2, 0.8], [0.9, 1.2]),
            leaf([10.0, 10.0], [11.0, 11.0]),
            leaf([10.5, 10.2], [11.5, 11.0]),
            leaf([10.1, 10.8], [10.9, 11.6]),
        ];
        let (a, b) = rstar_split(entries, 2);
        assert_eq!(a.len() + b.len(), 6);
        assert!(a.len() >= 2 && b.len() >= 2);
        let (ba, bb) = (bounding(&a), bounding(&b));
        assert_eq!(ba.overlap_area(&bb), 0.0, "clusters must not overlap");
    }

    #[test]
    fn split_respects_min_fill() {
        let entries: Vec<_> =
            (0..10).map(|i| leaf([i as f64, 0.0], [i as f64 + 0.5, 1.0])).collect();
        let (a, b) = rstar_split(entries, 4);
        assert!(a.len() >= 4 && b.len() >= 4);
        assert_eq!(a.len() + b.len(), 10);
    }
}
