//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Building a million-entry R\*-tree by repeated insertion costs minutes;
//! STR (Leutenegger et al.) packs fully-filled, well-clustered nodes in
//! `O(n log n)` and is how the BBS dataset index is constructed.

use skycache_geom::{Aabb, Point};

use crate::node::{ChildEntry, LeafEntry, Node};
use crate::tree::{RStarTree, RTreeParams};

impl<T> RStarTree<T> {
    /// Builds a tree from `(mbr, value)` pairs using STR packing.
    ///
    /// # Panics
    /// Panics if `dims == 0`, parameters are inconsistent, or any box has
    /// the wrong dimensionality.
    pub fn bulk_load(dims: usize, items: Vec<(Aabb, T)>, params: RTreeParams) -> Self {
        assert!(dims > 0, "zero-dimensional tree");
        let len = items.len();
        for (mbr, _) in &items {
            assert_eq!(mbr.dims(), dims, "box/tree dimensionality mismatch");
        }
        if items.is_empty() {
            return RStarTree::with_params(dims, params);
        }

        // Pack leaves.
        let leaf_entries: Vec<LeafEntry<T>> =
            items.into_iter().map(|(mbr, value)| LeafEntry { mbr, value }).collect();
        let groups = str_partition(leaf_entries, dims, params.max_entries);
        let mut nodes: Vec<Box<Node<T>>> =
            groups.into_iter().map(|g| Box::new(Node::Leaf(g))).collect();

        // Pack upper levels until a single root remains.
        let mut level = 1usize;
        while nodes.len() > 1 {
            let children: Vec<ChildEntry<T>> = nodes
                .into_iter()
                .map(|child| ChildEntry {
                    // skylint: allow(no-panic-paths) — STR packing never emits empty nodes.
                    mbr: child.mbr().expect("packed nodes are non-empty"),
                    child,
                })
                .collect();
            let groups = str_partition(children, dims, params.max_entries);
            nodes =
                groups.into_iter().map(|g| Box::new(Node::Inner { level, children: g })).collect();
            level += 1;
        }
        // skylint: allow(no-panic-paths) — the packing loop always leaves a root.
        RStarTree::from_root(nodes.pop().expect("at least one node"), params, dims, len)
    }

    /// Convenience: bulk-loads a tree of points (degenerate boxes), the
    /// layout BBS queries.
    pub fn bulk_load_points(
        points: impl IntoIterator<Item = (Point, T)>,
        params: RTreeParams,
    ) -> Self {
        let items: Vec<(Aabb, T)> =
            points.into_iter().map(|(p, v)| (Aabb::from_point(&p), v)).collect();
        let dims = items.first().map_or(1, |(b, _)| b.dims());
        Self::bulk_load(dims, items, params)
    }
}

/// Splits `entries` into `groups` consecutive chunks whose sizes differ by
/// at most one. Balanced chunking keeps every packed node at or above the
/// minimum fill (for `n > cap`, each chunk holds at least `⌊n/⌈n/cap⌉⌋ ≥
/// ⌊cap/2⌋ ≥ min_entries` entries), so bulk-loaded trees satisfy the same
/// invariants as dynamically built ones.
fn balanced_chunks<E>(mut entries: Vec<E>, groups: usize) -> Vec<Vec<E>> {
    let n = entries.len();
    let groups = groups.clamp(1, n.max(1));
    let base = n / groups;
    let extra = n % groups; // first `extra` chunks take one more
    let mut out = Vec::with_capacity(groups);
    for g in 0..groups {
        let take = base + usize::from(g < extra);
        let tail = entries.split_off(take.min(entries.len()));
        out.push(std::mem::replace(&mut entries, tail));
    }
    out
}

fn sort_by_center<E: crate::split::HasMbr>(entries: &mut [E], dim: usize) {
    entries.sort_by(|a, b| a.mbr().center()[dim].total_cmp(&b.mbr().center()[dim]));
}

/// Recursively tiles `entries` into groups of at most `cap`, slicing one
/// dimension at a time by center coordinate.
fn str_partition<E: crate::split::HasMbr>(entries: Vec<E>, dims: usize, cap: usize) -> Vec<Vec<E>> {
    fn tile<E: crate::split::HasMbr>(
        mut entries: Vec<E>,
        dim: usize,
        dims: usize,
        cap: usize,
        out: &mut Vec<Vec<E>>,
    ) {
        if entries.is_empty() {
            return;
        }
        if entries.len() <= cap {
            out.push(entries);
            return;
        }
        let groups_needed = entries.len().div_ceil(cap);
        if dim + 1 == dims {
            // Final dimension: emit balanced leaf-sized chunks.
            sort_by_center(&mut entries, dim);
            out.extend(balanced_chunks(entries, groups_needed));
            return;
        }
        // Slice count: ceil((n / cap)^(1/(remaining dims))).
        let remaining = (dims - dim) as f64;
        let slices = (groups_needed as f64).powf(1.0 / remaining).ceil() as usize;
        sort_by_center(&mut entries, dim);
        for slice in balanced_chunks(entries, slices) {
            tile(slice, dim + 1, dims, cap, out);
        }
    }
    let mut out = Vec::new();
    tile(entries, 0, dims, cap, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(n: usize) -> Vec<(Point, usize)> {
        (0..n)
            .map(|i| {
                let x = (i % 97) as f64;
                let y = ((i * 31) % 89) as f64;
                let z = ((i * 7) % 53) as f64;
                (Point::from(vec![x, y, z]), i)
            })
            .collect()
    }

    #[test]
    fn bulk_load_preserves_everything() {
        let t = RStarTree::bulk_load_points(points(10_000), RTreeParams::default());
        assert_eq!(t.len(), 10_000);
        t.check_invariants();
        let all = t.iter().count();
        assert_eq!(all, 10_000);
    }

    #[test]
    fn bulk_load_empty() {
        let t: RStarTree<u8> = RStarTree::bulk_load(2, vec![], RTreeParams::default());
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn bulk_load_single() {
        let t = RStarTree::bulk_load_points(points(1), RTreeParams::default());
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        t.check_invariants();
    }

    #[test]
    fn bulk_query_matches_bruteforce() {
        let pts = points(5_000);
        let t = RStarTree::bulk_load_points(pts.clone(), RTreeParams::default());
        let window = Aabb::new(vec![10.0, 20.0, 5.0], vec![40.0, 60.0, 30.0]).unwrap();
        let mut got: Vec<usize> = t.search(&window).into_iter().copied().collect();
        got.sort_unstable();
        let mut want: Vec<usize> =
            pts.iter().filter(|(p, _)| window.contains_point(p)).map(|&(_, v)| v).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn bulk_tree_supports_dynamic_updates() {
        let mut t = RStarTree::bulk_load_points(points(2_000), RTreeParams::default());
        t.insert(Aabb::from_point(&Point::from(vec![500.0, 500.0, 500.0])), 999_999);
        assert_eq!(t.len(), 2_001);
        t.check_invariants();
        let hit =
            t.remove(&Aabb::from_point(&Point::from(vec![500.0, 500.0, 500.0])), |&v| v == 999_999);
        assert_eq!(hit, Some(999_999));
        t.check_invariants();
    }
}
