//! Prioritized traversal: the best-first cursor used by BBS, and
//! k-nearest-neighbor search built on top of it.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use skycache_geom::Aabb;

use crate::node::Node;
use crate::tree::RStarTree;

/// Opaque handle to an inner node popped from a [`BestFirst`] cursor.
/// Pass it back to [`BestFirst::expand`] to enqueue the node's children.
pub struct NodeRef<'t, T>(&'t Node<T>);

/// An element popped from a [`BestFirst`] cursor, in ascending score order.
pub enum Popped<'t, T> {
    /// An inner node: the caller decides whether to [`expand`](BestFirst::expand)
    /// it (descend) or drop it (prune the whole subtree). Carries the
    /// node's bounding box by value (node pops are rare — one per `~M`
    /// items — so the clone is immaterial).
    Node(NodeRef<'t, T>, Aabb),
    /// A data entry.
    Item(&'t Aabb, &'t T),
}

struct HeapItem<'t, T> {
    score: f64,
    seq: u64,
    payload: Payload<'t, T>,
}

enum Payload<'t, T> {
    Node(&'t Node<T>, Aabb),
    Item(&'t Aabb, &'t T),
}

impl<T> PartialEq for HeapItem<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.seq == other.seq
    }
}

impl<T> Eq for HeapItem<'_, T> {}

impl<T> Ord for HeapItem<'_, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on score via reversed comparison; ties broken by
        // insertion order for determinism.
        other.score.total_cmp(&self.score).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for HeapItem<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Best-first traversal cursor over an [`RStarTree`].
///
/// Entries pop in ascending order of a caller-supplied score on their
/// bounding boxes (e.g. `mindist` for kNN, the `L1` lower-corner distance
/// for BBS). The caller controls descent: a popped [`Popped::Node`] is
/// only descended into when handed back via [`expand`](BestFirst::expand),
/// which is what lets BBS prune entire subtrees that are dominated or
/// outside the constraint region.
pub struct BestFirst<'t, T, S: Fn(&Aabb) -> f64> {
    score: S,
    heap: BinaryHeap<HeapItem<'t, T>>,
    seq: u64,
}

impl<'t, T, S: Fn(&Aabb) -> f64> BestFirst<'t, T, S> {
    /// Creates a cursor positioned at the tree root.
    pub fn new(tree: &'t RStarTree<T>, score: S) -> Self {
        let mut bf = BestFirst { score, heap: BinaryHeap::new(), seq: 0 };
        if let Some(mbr) = tree.mbr() {
            let s = (bf.score)(&mbr);
            bf.heap.push(HeapItem { score: s, seq: 0, payload: Payload::Node(&tree.root, mbr) });
            bf.seq = 1;
        }
        bf
    }

    /// Pops the lowest-score element, or `None` when the frontier is empty.
    pub fn pop(&mut self) -> Option<(f64, Popped<'t, T>)> {
        let item = self.heap.pop()?;
        let popped = match item.payload {
            Payload::Node(node, mbr) => Popped::Node(NodeRef(node), mbr),
            Payload::Item(mbr, value) => Popped::Item(mbr, value),
        };
        Some((item.score, popped))
    }

    /// Enqueues the children of a previously popped node, skipping those
    /// for which `keep` returns `false`.
    pub fn expand(&mut self, node: NodeRef<'t, T>, mut keep: impl FnMut(&Aabb) -> bool) {
        match node.0 {
            Node::Leaf(entries) => {
                for e in entries {
                    if keep(&e.mbr) {
                        let score = (self.score)(&e.mbr);
                        self.heap.push(HeapItem {
                            score,
                            seq: self.seq,
                            payload: Payload::Item(&e.mbr, &e.value),
                        });
                        self.seq += 1;
                    }
                }
            }
            Node::Inner { children, .. } => {
                for c in children {
                    if keep(&c.mbr) {
                        let score = (self.score)(&c.mbr);
                        self.heap.push(HeapItem {
                            score,
                            seq: self.seq,
                            payload: Payload::Node(&c.child, c.mbr.clone()),
                        });
                        self.seq += 1;
                    }
                }
            }
        }
    }

    /// Number of elements currently on the frontier (heap size) — the
    /// paper reports BBS heap behaviour via this.
    pub fn frontier_len(&self) -> usize {
        self.heap.len()
    }
}

impl<T> RStarTree<T> {
    /// The `k` values nearest to `target` (squared-Euclidean `MINDIST`
    /// order), with their distances. Deterministic for ties (insertion
    /// order).
    pub fn nearest_k(&self, target: &[f64], k: usize) -> Vec<(f64, &T)> {
        assert_eq!(target.len(), self.dims(), "target dimensionality mismatch");
        let mut out = Vec::with_capacity(k);
        if k == 0 {
            return out;
        }
        let mut bf = BestFirst::new(self, |mbr| mbr.min_dist_sq(target));
        while let Some((score, popped)) = bf.pop() {
            match popped {
                Popped::Node(node, _) => bf.expand(node, |_| true),
                Popped::Item(_, value) => {
                    out.push((score, value));
                    if out.len() == k {
                        break;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeParams;
    use skycache_geom::Point;

    fn pts(n: usize) -> Vec<(Point, usize)> {
        (0..n)
            .map(|i| {
                let x = ((i * 37) % 101) as f64;
                let y = ((i * 53) % 97) as f64;
                (Point::from(vec![x, y]), i)
            })
            .collect()
    }

    #[test]
    fn nearest_k_matches_bruteforce() {
        let data = pts(500);
        let tree = RStarTree::bulk_load_points(data.clone(), RTreeParams::default());
        let target = [30.0, 40.0];
        let got = tree.nearest_k(&target, 10);
        assert_eq!(got.len(), 10);

        let mut want: Vec<(f64, usize)> =
            data.iter().map(|(p, v)| (p.dist_sq(&Point::from(target.to_vec())), *v)).collect();
        want.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let want_dists: Vec<f64> = want.iter().take(10).map(|w| w.0).collect();
        let got_dists: Vec<f64> = got.iter().map(|g| g.0).collect();
        assert_eq!(got_dists, want_dists);
    }

    #[test]
    fn nearest_k_more_than_len() {
        let tree = RStarTree::bulk_load_points(pts(5), RTreeParams::default());
        assert_eq!(tree.nearest_k(&[0.0, 0.0], 100).len(), 5);
        assert!(tree.nearest_k(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn best_first_pops_in_score_order() {
        let tree = RStarTree::bulk_load_points(pts(300), RTreeParams::default());
        let mut bf = BestFirst::new(&tree, |mbr| mbr.lo().iter().sum());
        let mut last = f64::NEG_INFINITY;
        let mut items = 0;
        while let Some((score, popped)) = bf.pop() {
            assert!(score >= last - 1e-12, "scores must be non-decreasing");
            last = score;
            match popped {
                Popped::Node(node, _) => bf.expand(node, |_| true),
                Popped::Item(..) => items += 1,
            }
        }
        assert_eq!(items, 300);
    }

    #[test]
    fn pruning_skips_subtrees() {
        let tree = RStarTree::bulk_load_points(pts(300), RTreeParams::default());
        // Keep only boxes intersecting a small window; item count must
        // equal a brute-force filter.
        let window = Aabb::new(vec![0.0, 0.0], vec![30.0, 30.0]).unwrap();
        let mut bf = BestFirst::new(&tree, |mbr| mbr.min_dist_sq(&[0.0, 0.0]));
        let mut items = 0;
        while let Some((_, popped)) = bf.pop() {
            match popped {
                Popped::Node(node, _) => bf.expand(node, |mbr| mbr.intersects(&window)),
                Popped::Item(mbr, _) => {
                    assert!(mbr.intersects(&window));
                    items += 1;
                }
            }
        }
        let want = pts(300).iter().filter(|(p, _)| window.contains_point(p)).count();
        assert_eq!(items, want);
    }

    #[test]
    fn empty_tree_cursor() {
        let tree: RStarTree<u8> = RStarTree::new(2);
        let mut bf = BestFirst::new(&tree, |m| m.area());
        assert!(bf.pop().is_none());
        assert_eq!(bf.frontier_len(), 0);
    }
}
