//! Property-based tests for the R\*-tree: dynamic operation sequences must
//! preserve structural invariants and query correctness.

use proptest::prelude::*;
use skycache_geom::{Aabb, Point};
use skycache_rtree::{RStarTree, RTreeParams};

#[derive(Clone, Debug)]
enum Op {
    Insert(u8, u8),
    Remove(u8, u8),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            ((0..30u8), (0..30u8)).prop_map(|(x, y)| Op::Insert(x, y)),
            ((0..30u8), (0..30u8)).prop_map(|(x, y)| Op::Remove(x, y)),
        ],
        0..120,
    )
}

fn pt_box(x: u8, y: u8) -> Aabb {
    Aabb::from_point(&Point::from(vec![f64::from(x), f64::from(y)]))
}

proptest! {
    /// A random insert/remove sequence, mirrored against a Vec model:
    /// the tree and the model agree on every window query, and structural
    /// invariants hold throughout.
    #[test]
    fn tree_matches_model(ops in ops(), wx in 0..30u8, wy in 0..30u8, ww in 1..15u8, wh in 1..15u8) {
        let mut tree: RStarTree<(u8, u8)> = RStarTree::new(2);
        let mut model: Vec<(u8, u8)> = Vec::new();
        for op in &ops {
            match *op {
                Op::Insert(x, y) => {
                    tree.insert(pt_box(x, y), (x, y));
                    model.push((x, y));
                }
                Op::Remove(x, y) => {
                    let in_model = model.iter().position(|&p| p == (x, y));
                    let removed = tree.remove(&pt_box(x, y), |&p| p == (x, y));
                    match in_model {
                        Some(i) => {
                            prop_assert!(removed.is_some());
                            model.swap_remove(i);
                        }
                        None => prop_assert!(removed.is_none()),
                    }
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.check_invariants();

        let window = Aabb::new(
            vec![f64::from(wx), f64::from(wy)],
            vec![f64::from(wx + ww), f64::from(wy + wh)],
        ).unwrap();
        let mut got: Vec<(u8, u8)> = tree.search(&window).into_iter().copied().collect();
        let mut want: Vec<(u8, u8)> = model
            .iter()
            .filter(|&&(x, y)| window.contains_point(&Point::from(vec![f64::from(x), f64::from(y)])))
            .copied()
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Bulk loading N points yields the same query results as inserting
    /// them one by one, and both satisfy the invariants.
    #[test]
    fn bulk_equals_incremental(coords in prop::collection::vec((0..50u8, 0..50u8), 1..200)) {
        let points: Vec<(Point, usize)> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Point::from(vec![f64::from(x), f64::from(y)]), i))
            .collect();
        let bulk = RStarTree::bulk_load_points(points.clone(), RTreeParams::default());
        bulk.check_invariants();

        let mut incr: RStarTree<usize> = RStarTree::new(2);
        for (p, v) in &points {
            incr.insert(Aabb::from_point(p), *v);
        }
        incr.check_invariants();

        let window = Aabb::new(vec![10.0, 10.0], vec![35.0, 35.0]).unwrap();
        let mut a: Vec<usize> = bulk.search(&window).into_iter().copied().collect();
        let mut b: Vec<usize> = incr.search(&window).into_iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// nearest_k distances are sorted and match brute force.
    #[test]
    fn nearest_k_sorted_and_correct(
        coords in prop::collection::vec((0..100u8, 0..100u8), 1..150),
        tx in 0..100u8, ty in 0..100u8, k in 1..20usize,
    ) {
        let points: Vec<(Point, usize)> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Point::from(vec![f64::from(x), f64::from(y)]), i))
            .collect();
        let tree = RStarTree::bulk_load_points(points.clone(), RTreeParams::default());
        let target = [f64::from(tx), f64::from(ty)];
        let got = tree.nearest_k(&target, k);
        prop_assert_eq!(got.len(), k.min(points.len()));
        // Sorted ascending.
        for w in got.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        // Distances match brute force.
        let mut dists: Vec<f64> = points
            .iter()
            .map(|(p, _)| p.dist_sq(&Point::from(target.to_vec())))
            .collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, (d, _)) in got.iter().enumerate() {
            prop_assert_eq!(*d, dists[i]);
        }
    }
}
