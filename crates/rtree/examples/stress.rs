use skycache_geom::{Aabb, Point};
use skycache_rtree::{RStarTree, RTreeParams};

fn main() {
    // small params to force frequent splits/underflows
    let params = RTreeParams { max_entries: 4, min_entries: 2, reinsert_count: 1 };
    let mut state: u64 = 0x9E3779B97F4A7C15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for dims in [1usize, 2, 3] {
        let mut t: RStarTree<u64> = RStarTree::with_params(dims, params);
        let mut live: Vec<(Vec<f64>, u64)> = Vec::new();
        for step in 0..20000u64 {
            let r = next();
            if r % 3 != 0 || live.is_empty() {
                // insert, with heavy duplicates
                let coords: Vec<f64> = (0..dims).map(|_| (next() % 7) as f64).collect();
                t.insert(Aabb::from_point(&Point::from(coords.clone())), step);
                live.push((coords, step));
            } else {
                let idx = (next() as usize) % live.len();
                let (coords, id) = live.swap_remove(idx);
                let got = t.remove(&Aabb::from_point(&Point::from(coords.clone())), |&v| v == id);
                assert_eq!(got, Some(id), "dims={dims} step={step}");
            }
            if step % 997 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), live.len());
        // verify search completeness
        for (coords, id) in &live {
            let hits = t.search(&Aabb::from_point(&Point::from(coords.clone())));
            assert!(hits.contains(&id), "missing {id}");
        }
        println!("dims {dims} ok, len {}", t.len());
    }
}
