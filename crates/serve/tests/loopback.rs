//! End-to-end loopback tests: a real server on an ephemeral port, real
//! TCP clients speaking the line protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use skycache_core::ServiceConfig;
use skycache_geom::Point;
use skycache_serve::serve;
use skycache_storage::{Table, TableConfig};

fn grid_table() -> Table {
    let points: Vec<Point> = (0..20)
        .flat_map(|i| {
            (0..20).map(move |j| Point::from(vec![f64::from(i) / 10.0, f64::from(j) / 10.0]))
        })
        .collect();
    Table::build(points, TableConfig::default()).unwrap()
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to loopback server");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { reader, writer: stream }
    }

    fn roundtrip(&mut self, request: &str) -> String {
        writeln!(self.writer, "{request}").expect("send request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        assert!(line.ends_with('\n'), "reply must be a complete line: {line:?}");
        line.trim_end().to_owned()
    }
}

#[test]
fn queries_stats_and_control_verbs_over_tcp() {
    let handle = serve(grid_table(), ServiceConfig::default(), "127.0.0.1:0").unwrap();
    let mut alice = Client::connect(handle.addr());
    let mut bob = Client::connect(handle.addr());

    assert_eq!(alice.roundtrip("PING"), "OK pong");

    // Alice misses, Bob hits her cached result — and both serialize the
    // skyline to identical bytes (canonical wire order).
    let alice_reply = alice.roundtrip("Q 0.2 1.0 0.2 1.0");
    assert!(alice_reply.starts_with("OK 1 miss "), "got {alice_reply:?}");
    let bob_reply = bob.roundtrip("Q 0.2 1.0 0.2 1.0");
    assert!(bob_reply.starts_with("OK 1 hit "), "got {bob_reply:?}");
    assert_eq!(
        alice_reply.split(' ').skip(3).collect::<Vec<_>>(),
        bob_reply.split(' ').skip(3).collect::<Vec<_>>()
    );

    // A provably-empty region: answered `OK 0` without computing.
    assert_eq!(alice.roundtrip("Q 0.11 0.19 0.11 0.19"), "OK 0 miss");

    let stats = alice.roundtrip("STATS");
    assert!(stats.starts_with("OK coalesced="), "got {stats:?}");
    assert!(stats.contains("negative_inserts=1"), "got {stats:?}");
    // Only Alice's miss cached a result — Bob's exact hit touches her
    // item instead of re-inserting — so one epoch was published.
    assert!(stats.contains("cache_len=1"), "got {stats:?}");
    assert!(stats.contains("epoch=1"), "got {stats:?}");

    // Malformed input gets an ERR, and the connection keeps working.
    assert!(alice.roundtrip("Q 1 x").starts_with("ERR "));
    assert!(alice.roundtrip("NOPE").starts_with("ERR "));
    assert_eq!(alice.roundtrip("PING"), "OK pong");

    assert_eq!(alice.roundtrip("QUIT"), "OK bye");
    assert_eq!(bob.roundtrip("QUIT"), "OK bye");
    handle.shutdown().unwrap();
}

#[test]
fn unbounded_and_recorded_queries() {
    let handle = serve(grid_table(), ServiceConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr());

    // Fully unbounded: the global skyline of the grid is its origin.
    assert_eq!(client.roundtrip("Q * * * *"), "OK 1 miss 0,0");
    // A recorded query bypasses coalescing but still answers normally.
    assert_eq!(client.roundtrip("Q * * * * record"), "OK 1 hit 0,0");
    handle.shutdown().unwrap();
}

#[test]
fn shutdown_drains_idle_connections() {
    let handle = serve(grid_table(), ServiceConfig::default(), "127.0.0.1:0").unwrap();
    // An idle client that never sends anything must not wedge shutdown.
    let _idle = TcpStream::connect(handle.addr()).unwrap();
    let mut active = Client::connect(handle.addr());
    assert_eq!(active.roundtrip("PING"), "OK pong");
    handle.shutdown().unwrap();
}

#[test]
fn concurrent_clients_agree_and_coalesce_under_load() {
    let handle = serve(grid_table(), ServiceConfig::default(), "127.0.0.1:0").unwrap();
    let addr = handle.addr();
    let replies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                s.spawn(move || {
                    let mut c = Client::connect(addr);
                    let reply = c.roundtrip("Q 0.3 1.4 0.3 1.4");
                    c.roundtrip("QUIT");
                    reply
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for reply in &replies {
        assert!(reply.starts_with("OK 1 "), "got {reply:?}");
        // Canonical order ⇒ all clients read byte-identical skylines.
        assert_eq!(
            reply.split(' ').skip(3).collect::<Vec<_>>(),
            replies[0].split(' ').skip(3).collect::<Vec<_>>()
        );
    }
    let mut c = Client::connect(addr);
    let stats = c.roundtrip("STATS");
    // Every query either coalesced, computed, or hit the shared cache —
    // the counters must cover all 8 without double counting.
    let field = |name: &str| -> u64 {
        stats
            .split(' ')
            .find_map(|t| t.strip_prefix(&format!("{name}=")))
            .unwrap_or_else(|| panic!("missing {name} in {stats:?}"))
            .parse()
            .unwrap()
    };
    assert!(field("computes") >= 1);
    assert!(field("coalesced") + field("computes") == 8, "got {stats:?}");
    handle.shutdown().unwrap();
}
