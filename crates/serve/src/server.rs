//! The TCP server: an accept loop handing each connection its own
//! [`Session`] over one shared [`Service`].
//!
//! Threading model: [`serve`] binds the listener on the caller's thread
//! (so an ephemeral `:0` port is immediately known), then spawns one
//! accept thread that owns the table and the service. Each accepted
//! connection gets a scoped thread with its own session — sessions own
//! their executor scratch, so connections contend only on the service
//! state the paper's cache design already shares (the epoch-published
//! snapshot, the singleflight table, the negative cache).
//!
//! Shutdown is cooperative: [`ServerHandle::shutdown`] raises a flag and
//! pokes the listener with a throwaway connection to unblock `accept`;
//! idle connections poll the flag on a short read timeout, so the whole
//! server drains within one poll interval of the signal.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use skycache_core::{QueryRequest, Service, ServiceConfig, Session};
use skycache_storage::Table;

use crate::proto::{self, Request};

/// How often an idle connection re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Handle to a running server: its bound address plus shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The address the server is listening on (resolves `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and waits for the accept loop and every open
    /// connection to drain.
    ///
    /// # Errors
    /// Propagates an accept-loop I/O error or a server-thread panic.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.signal_stop();
        self.join()
    }

    /// Blocks until the server exits; it only exits once [`shutdown`]
    /// (or drop) signals it, so this is the run-forever call for a
    /// server binary.
    ///
    /// # Errors
    /// Propagates an accept-loop I/O error or a server-thread panic.
    ///
    /// [`shutdown`]: ServerHandle::shutdown
    pub fn wait(mut self) -> io::Result<()> {
        self.join()
    }

    fn signal_stop(&self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop; the loop re-checks the flag per
        // accepted connection.
        drop(TcpStream::connect(self.addr));
    }

    fn join(&mut self) -> io::Result<()> {
        match self.join.take() {
            Some(handle) => {
                handle.join().map_err(|_| io::Error::other("server thread panicked"))?
            }
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.signal_stop();
            drop(self.join());
        }
    }
}

/// Starts serving `table` through a [`Service`] on `addr`.
///
/// Returns as soon as the listener is bound; queries are answered on a
/// background accept thread until the handle is shut down or dropped.
///
/// # Errors
/// Fails if the address cannot be bound or the thread cannot spawn.
pub fn serve(
    table: Table,
    config: ServiceConfig,
    addr: impl ToSocketAddrs,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = stop.clone();
    let join = thread::Builder::new().name("skyserve-accept".to_owned()).spawn(move || {
        let service = Service::open(&table, config);
        accept_loop(&listener, &service, &thread_stop)
    })?;
    Ok(ServerHandle { addr, stop, join: Some(join) })
}

fn accept_loop(listener: &TcpListener, service: &Service<'_>, stop: &AtomicBool) -> io::Result<()> {
    thread::scope(|s| {
        for conn in listener.incoming() {
            if stop.load(Ordering::Acquire) {
                break;
            }
            let stream = match conn {
                Ok(stream) => stream,
                // Transient accept errors (e.g. a client aborting its
                // handshake) must not take the server down.
                Err(_) => continue,
            };
            let session = service.session();
            s.spawn(move || drop(handle_conn(stream, session, service, stop)));
        }
        Ok(())
    })
}

enum Flow {
    Continue,
    Quit,
}

fn handle_conn(
    stream: TcpStream,
    mut session: Session<'_>,
    service: &Service<'_>,
    stop: &AtomicBool,
) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    drop(stream.set_nodelay(true));
    let mut reader = stream.try_clone()?;
    let mut out = io::BufWriter::new(stream);
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        // Answer every complete line already buffered before reading more.
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            if let Flow::Quit = respond(text, &mut session, service, &mut out)? {
                return out.flush();
            }
        }
        match reader.read(&mut buf) {
            Ok(0) => return out.flush(), // client closed
            Ok(n) => pending.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Acquire) {
                    return out.flush();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn respond(
    line: &str,
    session: &mut Session<'_>,
    service: &Service<'_>,
    out: &mut impl Write,
) -> io::Result<Flow> {
    let reply = match proto::parse_request(line) {
        Err(msg) => proto::err_reply(&msg),
        Ok(Request::Ping) => proto::PONG.to_owned(),
        Ok(Request::Quit) => {
            writeln!(out, "{}", proto::BYE)?;
            out.flush()?;
            return Ok(Flow::Quit);
        }
        Ok(Request::Stats) => {
            let cache = service.cache();
            proto::stats_reply(&service.metrics(), cache.len(), cache.epoch())
        }
        Ok(Request::Query { constraints, record }) => {
            let mut req = QueryRequest::new(constraints);
            if record {
                req = req.recorded();
            }
            match session.execute(&req) {
                Ok(outcome) => proto::query_reply(&outcome),
                Err(e) => proto::err_reply(&e.to_string()),
            }
        }
    };
    writeln!(out, "{reply}")?;
    out.flush()?;
    Ok(Flow::Continue)
}
