//! skyserve: a zero-dependency TCP line-protocol server over the
//! multi-tenant query [`Service`](skycache_core::Service).
//!
//! The paper's cache is evaluated one query at a time; this crate is the
//! deployed shape — many clients over one table and one shared cache,
//! each connection a [`Session`](skycache_core::Session) that picks up
//! the service fast paths (epoch-snapshot reads, singleflight
//! coalescing, negative caching) for free. The wire format is a
//! line-oriented text protocol ([`proto`], DESIGN.md §16.4) chosen so
//! `nc` is a complete client:
//!
//! ```text
//! printf 'Q 0.2 0.8 0.2 0.8\nQUIT\n' | nc 127.0.0.1 7878
//! ```
//!
//! Embed with [`serve`], or run the `skyserve` binary over a synthetic
//! table. `repro serve` drives a concurrent-load benchmark against this
//! server and writes `BENCH_serve.json`.

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(rust_2018_idioms)]

pub mod proto;
pub mod server;

pub use server::{serve, ServerHandle};
