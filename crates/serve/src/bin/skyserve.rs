//! `skyserve` — serve constrained skyline queries over TCP.
//!
//! Builds a synthetic table and answers the line protocol until killed:
//!
//! ```text
//! cargo run --release -p skycache-serve --bin skyserve -- --addr 127.0.0.1:7878
//! printf 'Q 0.2 0.8 0.2 0.8 0.2 0.8\nSTATS\nQUIT\n' | nc 127.0.0.1 7878
//! ```

use std::process::ExitCode;

use skycache_core::ServiceConfig;
use skycache_datagen::{Distribution, SyntheticGen};
use skycache_serve::serve;
use skycache_storage::{Table, TableConfig};

const USAGE: &str = "usage: skyserve [options]
  --addr <host:port>   listen address (default 127.0.0.1:7878; port 0 picks one)
  --points <n>         synthetic table size (default 100000)
  --dims <d>           dimensionality (default 3)
  --seed <s>           data seed (default 42)
  --dist <name>        independent | correlated | anticorrelated (default independent)
  --no-coalesce        disable singleflight coalescing
  --no-negative        disable the negative cache";

struct Options {
    addr: String,
    points: usize,
    dims: usize,
    seed: u64,
    dist: Distribution,
    config: ServiceConfig,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:7878".to_owned(),
        points: 100_000,
        dims: 3,
        seed: 42,
        dist: Distribution::Independent,
        config: ServiceConfig::default(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("--{flag} requires a value"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("addr")?.to_owned(),
            "--points" => {
                opts.points =
                    value("points")?.parse().map_err(|_| "--points expects a count".to_owned())?;
            }
            "--dims" => {
                opts.dims =
                    value("dims")?.parse().map_err(|_| "--dims expects a count".to_owned())?;
            }
            "--seed" => {
                opts.seed =
                    value("seed")?.parse().map_err(|_| "--seed expects an integer".to_owned())?;
            }
            "--dist" => {
                opts.dist = match value("dist")? {
                    "independent" => Distribution::Independent,
                    "correlated" => Distribution::Correlated,
                    "anticorrelated" => Distribution::AntiCorrelated,
                    other => return Err(format!("unknown distribution {other:?}")),
                };
            }
            "--no-coalesce" => opts.config.coalesce = false,
            "--no-negative" => opts.config.negative_cache = false,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_options(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("skyserve: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let points = SyntheticGen::new(opts.dist, opts.dims, opts.seed).generate(opts.points);
    let table = match Table::build(points, TableConfig::default()) {
        Ok(table) => table,
        Err(e) => {
            eprintln!("skyserve: could not build table: {e}");
            return ExitCode::FAILURE;
        }
    };

    let handle = match serve(table, opts.config.clone(), opts.addr.as_str()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("skyserve: could not bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "skyserve listening on {} ({} {} points, {} dims, seed {}, coalesce {}, negative {})",
        handle.addr(),
        opts.points,
        opts.dist.label(),
        opts.dims,
        opts.seed,
        opts.config.coalesce,
        opts.config.negative_cache,
    );
    match handle.wait() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("skyserve: server error: {e}");
            ExitCode::FAILURE
        }
    }
}
