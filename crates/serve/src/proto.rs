//! The skyserve line protocol (DESIGN.md §16.4).
//!
//! Requests are one line each, ASCII tokens separated by whitespace:
//!
//! ```text
//! Q <lo> <hi> [<lo> <hi> ...] [record]   constrained skyline query
//! STATS                                  service-layer counters
//! PING                                   liveness check
//! QUIT                                   close the connection
//! ```
//!
//! A bound of `*` means unbounded on that side. Every request gets
//! exactly one reply line: `OK ...` on success, `ERR <message>` on
//! failure. Query replies are
//! `OK <n> <hit|miss> <x,y,..> <x,y,..> ...` with the skyline points in
//! canonical (bitwise-lexicographic) order, so identical queries —
//! including a coalesced joiner and its leader — always serialize to the
//! same bytes.

use std::fmt::Write as _;

use skycache_core::{QueryOutcome, ServiceMetrics};
use skycache_geom::Constraints;

/// Reply to `PING`.
pub const PONG: &str = "OK pong";
/// Reply to `QUIT`, sent just before the server closes the connection.
pub const BYE: &str = "OK bye";

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// A constrained skyline query over the service's table.
    Query {
        /// The query constraints, one `(lo, hi)` pair per dimension.
        constraints: Constraints,
        /// Whether to record per-query observability (bypasses
        /// coalescing: reports are per-request property).
        record: bool,
    },
    /// Service counters: coalesced/negative/compute totals, cache size
    /// and epoch.
    Stats,
    /// Liveness check.
    Ping,
    /// Close the connection after an `OK bye`.
    Quit,
}

/// Parses one request line (already stripped of its newline).
///
/// # Errors
/// Returns a human-readable message suitable for an `ERR` reply.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut tokens = line.split_ascii_whitespace();
    let verb = tokens.next().ok_or_else(|| "empty request".to_owned())?;
    match verb {
        "Q" => {
            let mut rest: Vec<&str> = tokens.collect();
            let record = rest.last() == Some(&"record");
            if record {
                rest.pop();
            }
            if rest.is_empty() || !rest.len().is_multiple_of(2) {
                return Err(
                    "Q needs one lo/hi pair per dimension: Q lo hi [lo hi ...] [record]".to_owned()
                );
            }
            let mut pairs = Vec::with_capacity(rest.len() / 2);
            for pair in rest.chunks(2) {
                pairs.push((
                    parse_bound(pair[0], f64::NEG_INFINITY)?,
                    parse_bound(pair[1], f64::INFINITY)?,
                ));
            }
            let constraints = Constraints::from_pairs(&pairs).map_err(|e| e.to_string())?;
            Ok(Request::Query { constraints, record })
        }
        "STATS" => end_of_line(tokens, Request::Stats),
        "PING" => end_of_line(tokens, Request::Ping),
        "QUIT" => end_of_line(tokens, Request::Quit),
        other => Err(format!("unknown verb {other:?} (expected Q, STATS, PING or QUIT)")),
    }
}

fn end_of_line<'a>(
    mut rest: impl Iterator<Item = &'a str>,
    req: Request,
) -> Result<Request, String> {
    match rest.next() {
        None => Ok(req),
        Some(extra) => Err(format!("unexpected trailing token {extra:?}")),
    }
}

fn parse_bound(token: &str, unbounded: f64) -> Result<f64, String> {
    if token == "*" {
        return Ok(unbounded);
    }
    token.parse::<f64>().map_err(|_| format!("bad bound {token:?} (expected a number or *)"))
}

/// Formats a query outcome: `OK <n> <hit|miss> <point> ...`, points as
/// comma-joined coordinates in canonical bitwise order.
pub fn query_reply(outcome: &QueryOutcome) -> String {
    let mut sky: Vec<&[f64]> = outcome.skyline.iter().map(|p| p.coords()).collect();
    sky.sort_by(|a, b| {
        let key = |c: &[f64]| c.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        key(a).cmp(&key(b))
    });
    let mut line =
        format!("OK {} {}", sky.len(), if outcome.stats.cache_hit { "hit" } else { "miss" });
    for coords in sky {
        line.push(' ');
        for (i, c) in coords.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            // f64 Display round-trips, so the client can parse exactly.
            let _ = write!(line, "{c}");
        }
    }
    line
}

/// Formats the `STATS` reply from the service counters plus the shared
/// cache's authoritative size and epoch.
pub fn stats_reply(m: &ServiceMetrics, cache_len: usize, epoch: u64) -> String {
    format!(
        "OK coalesced={} negative_hits={} negative_inserts={} computes={} ticks={} \
         cache_len={cache_len} epoch={epoch}",
        m.coalesced, m.negative_hits, m.negative_inserts, m.computes, m.ticks,
    )
}

/// Formats an error reply; the message is flattened to one line.
pub fn err_reply(msg: &str) -> String {
    format!("ERR {}", msg.replace(['\r', '\n'], " "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycache_core::QueryStats;
    use skycache_geom::Point;

    fn query(line: &str) -> Constraints {
        match parse_request(line).unwrap() {
            Request::Query { constraints, .. } => constraints,
            other => panic!("expected a query, got {other:?}"),
        }
    }

    #[test]
    fn parses_queries_with_bounds_and_record() {
        let c = query("Q 0.1 0.5 2 3");
        assert_eq!(c.lo(), &[0.1, 2.0]);
        assert_eq!(c.hi(), &[0.5, 3.0]);
        assert_eq!(
            parse_request("Q 0 1 record").unwrap(),
            Request::Query {
                constraints: Constraints::from_pairs(&[(0.0, 1.0)]).unwrap(),
                record: true
            }
        );
        let unbounded = query("Q * 5 1 *");
        assert_eq!(unbounded.lo(), &[f64::NEG_INFINITY, 1.0]);
        assert_eq!(unbounded.hi(), &[5.0, f64::INFINITY]);
    }

    #[test]
    fn parses_control_verbs() {
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("  PING  ").unwrap(), Request::Ping);
        assert_eq!(parse_request("QUIT").unwrap(), Request::Quit);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("").is_err());
        assert!(parse_request("Q").is_err());
        assert!(parse_request("Q 1").is_err(), "odd bound count");
        assert!(parse_request("Q 1 x").is_err(), "non-numeric bound");
        assert!(parse_request("Q 5 1").is_err(), "inverted interval");
        assert!(parse_request("HELLO").is_err());
        assert!(parse_request("PING extra").is_err());
    }

    #[test]
    fn query_reply_is_canonical() {
        let outcome = QueryOutcome {
            skyline: vec![Point::from(vec![2.0, 1.0]), Point::from(vec![1.0, 2.0])],
            stats: QueryStats { cache_hit: true, ..QueryStats::default() },
            report: None,
        };
        assert_eq!(query_reply(&outcome), "OK 2 hit 1,2 2,1");
        let empty = QueryOutcome { skyline: vec![], stats: QueryStats::default(), report: None };
        assert_eq!(query_reply(&empty), "OK 0 miss");
    }

    #[test]
    fn stats_and_error_replies() {
        let m =
            ServiceMetrics { coalesced: 3, negative_hits: 1, computes: 7, ..Default::default() };
        assert_eq!(
            stats_reply(&m, 5, 7),
            "OK coalesced=3 negative_hits=1 negative_inserts=0 computes=7 ticks=0 \
             cache_len=5 epoch=7"
        );
        assert_eq!(err_reply("bad\nthing"), "ERR bad thing");
    }
}
