//! Property tests for the storage engine: every plan the executor may
//! choose (single-index scan, bitmap AND, sequential scan, empty-query
//! detection) must return exactly the brute-force filter result, and the
//! accounting must obey its invariants — under arbitrary regions,
//! endpoint openness, and table mutations.

use proptest::prelude::*;

use skycache_geom::{HyperRect, Interval, Point};
use skycache_storage::{FetchPlan, Table, TableConfig};

const DIMS: usize = 3;

fn coord() -> impl Strategy<Value = f64> {
    (0..=10u8).prop_map(f64::from)
}

fn point() -> impl Strategy<Value = Point> {
    prop::collection::vec(coord(), DIMS).prop_map(Point::from)
}

fn dataset() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(point(), 1..200)
}

fn interval() -> impl Strategy<Value = Interval> {
    (coord(), coord(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(a, b, lo_open, hi_open, unbounded)| {
            if unbounded {
                Interval::closed(f64::NEG_INFINITY, f64::INFINITY)
            } else {
                Interval::new(a.min(b), a.max(b), lo_open, hi_open)
            }
        },
    )
}

fn region() -> impl Strategy<Value = HyperRect> {
    prop::collection::vec(interval(), DIMS).prop_map(HyperRect::from_intervals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// fetch == brute-force filter, for every plan shape.
    #[test]
    fn fetch_matches_bruteforce(points in dataset(), region in region()) {
        let table = Table::build(points.clone(), TableConfig::default()).unwrap();
        let result = table.fetch_plan(&FetchPlan::single(region.clone()));

        let mut got: Vec<u32> = result.rows.iter().map(|r| r.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| region.contains_point(p))
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);

        // Accounting invariants.
        let s = &result.stats;
        prop_assert_eq!(s.rows_matched as usize, result.rows.len());
        prop_assert_eq!(s.points_read, s.rows_matched);
        prop_assert!(s.heap_fetches >= s.rows_matched);
        prop_assert_eq!(s.range_queries_issued, 1);
        prop_assert_eq!(s.range_queries_executed + s.range_queries_empty, 1);
        if s.range_queries_empty == 1 {
            prop_assert!(result.rows.is_empty());
            prop_assert_eq!(s.heap_fetches, 0);
        }
        prop_assert_eq!(
            result.simulated_latency,
            table.config().cost_model.fetch_latency(s)
        );
    }

    /// Empty-query detection never fires on a region that has matches.
    #[test]
    fn empty_detection_is_sound(points in dataset(), region in region()) {
        let table = Table::build(points.clone(), TableConfig::default()).unwrap();
        let result = table.fetch_plan(&FetchPlan::single(region.clone()));
        if result.stats.range_queries_empty == 1 {
            prop_assert!(
                points.iter().all(|p| !region.contains_point(p)),
                "empty detection discarded a non-empty query"
            );
        }
    }

    /// After arbitrary insert/delete churn, fetch still equals the filter
    /// over the live set.
    #[test]
    fn mutations_preserve_fetch_semantics(
        initial in dataset(),
        inserts in prop::collection::vec(point(), 0..30),
        delete_picks in prop::collection::vec(any::<u16>(), 0..30),
        region in region(),
    ) {
        let mut table = Table::build(initial.clone(), TableConfig::default()).unwrap();
        let mut model: Vec<(u32, Point)> = initial
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, p)| (i as u32, p))
            .collect();

        for p in &inserts {
            let row = table.insert(p.clone()).unwrap();
            model.push((row, p.clone()));
        }
        for pick in &delete_picks {
            if model.is_empty() {
                break;
            }
            let idx = *pick as usize % model.len();
            let (row, _) = model.swap_remove(idx);
            prop_assert!(table.delete(row).is_some());
        }
        prop_assert_eq!(table.len(), model.len());

        let mut got: Vec<u32> = table.fetch_plan(&FetchPlan::single(region.clone())).rows.iter().map(|r| r.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = model
            .iter()
            .filter(|(_, p)| region.contains_point(p))
            .map(|(row, _)| *row)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Save/load roundtrips arbitrary mutated tables bit-exactly.
    #[test]
    fn persistence_roundtrip(
        initial in dataset(),
        delete_picks in prop::collection::vec(any::<u16>(), 0..10),
        region in region(),
    ) {
        let mut table = Table::build(initial.clone(), TableConfig::default()).unwrap();
        let mut rows: Vec<u32> = (0..initial.len() as u32).collect();
        for pick in &delete_picks {
            if rows.is_empty() {
                break;
            }
            let idx = *pick as usize % rows.len();
            table.delete(rows.swap_remove(idx)).unwrap();
        }

        let path = std::env::temp_dir().join(format!(
            "skycache-prop-{}-{:x}.skyc",
            std::process::id(),
            rand_suffix(&initial)
        ));
        table.save(&path).unwrap();
        let loaded = Table::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(loaded.len(), table.len());
        let mut a: Vec<u32> = table.fetch_plan(&FetchPlan::single(region.clone())).rows.iter().map(|r| r.id).collect();
        let mut b: Vec<u32> = loaded.fetch_plan(&FetchPlan::single(region.clone())).rows.iter().map(|r| r.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}

/// Cheap content-derived suffix so concurrent test processes don't collide.
fn rand_suffix(points: &[Point]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in points {
        for c in p.coords() {
            h ^= c.to_bits();
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}
