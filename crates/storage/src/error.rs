use std::fmt;

use skycache_geom::GeomError;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table cannot be built from zero points (dimensionality unknown).
    EmptyTable,
    /// A point's dimensionality differs from the table's.
    DimensionMismatch {
        /// The table's dimensionality.
        expected: usize,
        /// The offending point's dimensionality.
        actual: usize,
    },
    /// Page capacity must be at least one point.
    InvalidPageCapacity,
    /// An underlying geometric constructor failed.
    Geom(GeomError),
    /// An I/O failure during save/load.
    Io(String),
    /// A persisted table file failed validation.
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::EmptyTable => write!(f, "cannot build a table from zero points"),
            StorageError::DimensionMismatch { expected, actual } => {
                write!(f, "point dimensionality {actual} != table dimensionality {expected}")
            }
            StorageError::InvalidPageCapacity => write!(f, "page capacity must be >= 1"),
            StorageError::Geom(e) => write!(f, "geometry error: {e}"),
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::Corrupt(why) => write!(f, "corrupt table file: {why}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Geom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for StorageError {
    fn from(e: GeomError) -> Self {
        StorageError::Geom(e)
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}
