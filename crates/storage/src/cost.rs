use std::ops::{Add, AddAssign};
use std::time::Duration;

/// Deterministic I/O latency model.
///
/// The paper's measurements ran against PostgreSQL on a 2008-era machine
/// with the DBMS restarted between runs (cold cache); its conclusions rest
/// on two cost drivers it calls out explicitly in Section 7.3: *"the
/// number of disk reads performed and the degree of random access due to
/// multiple range queries"*. The model charges exactly those:
///
/// * `seek` — once per executed (non-empty) range query: locating the
///   first heap tuple of an index range is a random access;
/// * `per_point` — per heap row fetched: on a cold cache, matching rows
///   are scattered over heap pages read quasi-randomly (the dominant cost
///   the paper measures — its fetch times track points read);
/// * `probe` — per index-only probe (range location + emptiness check);
/// * `index_entry` — per index leaf entry scanned (sequential, cheap).
///
/// Defaults are calibrated so that a Baseline query matching ~2k rows of
/// a 1M-row table costs a few hundred milliseconds, the order of
/// magnitude of the paper's Figures 6 and 10. Absolute values are
/// irrelevant to the reproduction; only the relative shape matters, and
/// that is governed by the counter ratios, not the constants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of the random access starting one executed range query.
    pub seek_ns: u64,
    /// Cost of fetching one heap row.
    pub per_point_ns: u64,
    /// Cost of one index probe (also the full cost of an empty query).
    pub probe_ns: u64,
    /// Cost of scanning one index entry during a bitmap index scan
    /// (index-only work, far cheaper than a heap fetch).
    pub index_entry_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seek_ns: 4_000_000,
            per_point_ns: 150_000,
            probe_ns: 30_000,
            index_entry_ns: 20,
        }
    }
}

impl CostModel {
    /// A zero-cost model: counters only, no simulated latency.
    pub fn free() -> Self {
        CostModel { seek_ns: 0, per_point_ns: 0, probe_ns: 0, index_entry_ns: 0 }
    }

    /// Simulated latency of a fetch described by `stats`.
    pub fn fetch_latency(&self, stats: &FetchStats) -> Duration {
        let ns = self.seek_ns * stats.range_queries_executed
            + self.per_point_ns * stats.heap_fetches
            + self.probe_ns * stats.index_probes
            + self.index_entry_ns * stats.index_entries_scanned;
        Duration::from_nanos(ns)
    }

    /// Simulated latency of a batch fetched over concurrent I/O lanes.
    ///
    /// Each element of `lane_totals` is the sequential latency sum of one
    /// lane's queries; concurrent streams overlap, so the batch is
    /// charged its slowest lane — the critical path. Deterministic by
    /// construction: no queueing or contention jitter is modelled, and a
    /// single lane degenerates to the sequential sum.
    pub fn critical_path_latency(&self, lane_totals: &[Duration]) -> Duration {
        lane_totals.iter().copied().max().unwrap_or(Duration::ZERO)
    }

    /// Ratio of index-entry-scan cost to heap-fetch cost, used by the
    /// planner to compare a bitmap plan against a single-index plan.
    pub(crate) fn entry_to_point_ratio(&self) -> f64 {
        if self.per_point_ns == 0 {
            // Counter-only mode: use the default hardware ratio so plan
            // choice stays realistic.
            return 20.0 / 150_000.0;
        }
        self.index_entry_ns as f64 / self.per_point_ns as f64
    }
}

/// Counters describing the I/O work of one or more range queries.
///
/// These are the quantities the paper's evaluation plots directly:
/// `points_read` (Fig. 8), `range_queries_issued` / `..._executed` /
/// `..._empty` (Fig. 9 and the discussion in 7.3.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Range queries handed to the executor.
    pub range_queries_issued: u64,
    /// Range queries that actually touched the heap.
    pub range_queries_executed: u64,
    /// Range queries discarded by index-only emptiness detection.
    pub range_queries_empty: u64,
    /// Rows of the queried region(s) read from the heap — the paper's
    /// "points read" metric (Fig. 8). Equals the matching rows: plans
    /// that scan extra candidate tuples surface that work in
    /// [`FetchStats::heap_fetches`] and the latency model instead.
    pub points_read: u64,
    /// Heap tuples actually fetched by the chosen plan (candidates of a
    /// single-index scan, or just the matches of a bitmap AND scan) —
    /// the latency driver.
    pub heap_fetches: u64,
    /// Rows surviving the full constraint filter (= `points_read`).
    pub rows_matched: u64,
    /// Index probes performed (range location / emptiness checks).
    pub index_probes: u64,
    /// Index entries scanned by bitmap index scans.
    pub index_entries_scanned: u64,
    /// Range queries *saved* by the coalescing fetch planner: non-empty
    /// candidate regions minus the merged range queries actually executed
    /// for them. Zero for non-coalescing plans.
    pub regions_coalesced: u64,
}

impl FetchStats {
    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &FetchStats) {
        *self += *other;
    }
}

impl Add for FetchStats {
    type Output = FetchStats;

    fn add(mut self, rhs: FetchStats) -> FetchStats {
        self += rhs;
        self
    }
}

impl AddAssign for FetchStats {
    fn add_assign(&mut self, rhs: FetchStats) {
        self.range_queries_issued += rhs.range_queries_issued;
        self.range_queries_executed += rhs.range_queries_executed;
        self.range_queries_empty += rhs.range_queries_empty;
        self.points_read += rhs.points_read;
        self.heap_fetches += rhs.heap_fetches;
        self.rows_matched += rhs.rows_matched;
        self.index_probes += rhs.index_probes;
        self.index_entries_scanned += rhs.index_entries_scanned;
        self.regions_coalesced += rhs.regions_coalesced;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_charges_all_components() {
        let m = CostModel::default();
        let stats = FetchStats {
            range_queries_issued: 3,
            range_queries_executed: 2,
            range_queries_empty: 1,
            points_read: 40,
            heap_fetches: 100,
            rows_matched: 40,
            index_probes: 9,
            index_entries_scanned: 500,
            regions_coalesced: 0,
        };
        let ns = m.fetch_latency(&stats).as_nanos() as u64;
        assert_eq!(
            ns,
            2 * m.seek_ns + 100 * m.per_point_ns + 9 * m.probe_ns + 500 * m.index_entry_ns
        );
    }

    #[test]
    fn free_model_is_zero() {
        let stats = FetchStats { heap_fetches: 1_000_000, ..Default::default() };
        assert_eq!(CostModel::free().fetch_latency(&stats), Duration::ZERO);
    }

    #[test]
    fn stats_addition() {
        let a = FetchStats { points_read: 5, rows_matched: 2, ..Default::default() };
        let b = FetchStats { points_read: 7, index_probes: 3, ..Default::default() };
        let c = a + b;
        assert_eq!(c.points_read, 12);
        assert_eq!(c.rows_matched, 2);
        assert_eq!(c.index_probes, 3);
    }
}
