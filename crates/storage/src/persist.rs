//! Binary persistence for tables: snapshot a dataset to disk and reload it
//! bit-exactly, so large generated experiment inputs can be reused across
//! runs.
//!
//! Format (`SKYC` v1, little-endian):
//!
//! ```text
//! magic   b"SKYC"            4 bytes
//! version u32                = 1
//! dims    u32
//! page_capacity u64
//! cost model: seek, per_point, probe, index_entry  4 × u64
//! n_slots u64                heap slots, including tombstoned rows
//! live bitmap                ⌈n_slots / 8⌉ bytes (LSB-first)
//! coords  n_slots · dims · f64
//! checksum u64               FNV-1a over everything above
//! ```
//!
//! Indexes are rebuilt on load (cheaper than storing them and immune to
//! format drift). Loading validates magic, version, checksum and NaN-
//! freedom before constructing the table.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use skycache_geom::Point;

use crate::cost::CostModel;
use crate::error::StorageError;
use crate::table::{Table, TableConfig};
use crate::Result;

const MAGIC: &[u8; 4] = b"SKYC";
const VERSION: u32 = 1;

/// Validates a decoded item count against the bytes that must back it:
/// `n` items of `item_bytes` each have to fit in what remains of `buf`,
/// so a corrupted header can never drive an allocation larger than the
/// file that carries it. This is the designated `range-taint` validator
/// for this module — decoded counts pass through here before reaching
/// `Vec::with_capacity`.
fn checked_len(n: u64, item_bytes: usize, buf: &Bytes, what: &str) -> Result<usize> {
    let n = usize::try_from(n).map_err(|_| StorageError::Corrupt(format!("{what} overflow")))?;
    match n.checked_mul(item_bytes) {
        Some(total) if total <= buf.remaining() => Ok(n),
        _ => Err(StorageError::Corrupt(format!("{what} exceeds payload"))),
    }
}

/// Explicit on-disk location for table snapshots.
///
/// Persistence never consults ambient process state: callers choose the
/// directory (CLI flag, experiment config, test tmpdir) and everything
/// downstream takes it from this value. This is the configuration
/// counterpart of skylint's `env-read-confinement` rule — the library
/// has no `std::env` read to confine because the directory arrives as
/// an argument.
#[derive(Clone, Debug)]
pub struct SnapshotDir {
    dir: PathBuf,
}

impl SnapshotDir {
    /// A snapshot store rooted at an explicitly chosen directory.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SnapshotDir { dir: dir.into() }
    }

    /// The file path the named snapshot lives at (`<dir>/<name>.skyc`).
    pub fn path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.skyc"))
    }

    /// Saves `table` under `name`, returning the written path.
    pub fn save(&self, table: &Table, name: &str) -> Result<PathBuf> {
        let path = self.path(name);
        table.save(&path)?;
        Ok(path)
    }

    /// Loads the snapshot previously saved under `name`.
    pub fn load(&self, name: &str) -> Result<Table> {
        Table::load(self.path(name))
    }
}

/// FNV-1a, the classic non-cryptographic integrity hash.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl Table {
    /// Serializes the table (heap + tombstones + config) to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut buf = BytesMut::with_capacity(64 + self.slot_count() * (self.dims() * 8 + 1));
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.dims() as u32);
        buf.put_u64_le(self.config().page_capacity as u64);
        let m = self.config().cost_model;
        buf.put_u64_le(m.seek_ns);
        buf.put_u64_le(m.per_point_ns);
        buf.put_u64_le(m.probe_ns);
        buf.put_u64_le(m.index_entry_ns);
        let n = self.slot_count();
        buf.put_u64_le(n as u64);

        // Live bitmap, LSB-first.
        let mut byte = 0u8;
        for slot in 0..n {
            if self.is_live(slot as u32) {
                byte |= 1 << (slot % 8);
            }
            if slot % 8 == 7 {
                buf.put_u8(byte);
                byte = 0;
            }
        }
        if !n.is_multiple_of(8) {
            buf.put_u8(byte);
        }

        for p in self.all_points() {
            for &c in p.coords() {
                buf.put_f64_le(c);
            }
        }

        let checksum = fnv1a(&buf);
        buf.put_u64_le(checksum);

        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(&buf)?;
        file.flush()?;
        Ok(())
    }

    /// Loads a table previously written by [`Table::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Table> {
        let mut raw = Vec::new();
        BufReader::new(File::open(path)?).read_to_end(&mut raw)?;
        if raw.len() < 8 {
            return Err(StorageError::Corrupt("file too short".into()));
        }
        let (payload, tail) = raw.split_at(raw.len() - 8);
        // skylint: allow(no-panic-paths) — split_at gives tail exactly 8 bytes.
        let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        if fnv1a(payload) != stored {
            return Err(StorageError::Corrupt("checksum mismatch".into()));
        }

        let mut buf = Bytes::copy_from_slice(payload);
        fn need(buf: &Bytes, n: usize, what: &str) -> Result<()> {
            if buf.remaining() < n {
                return Err(StorageError::Corrupt(format!("truncated {what}")));
            }
            Ok(())
        }
        need(&buf, 4 + 4 + 4 + 8 + 32 + 8, "header")?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(StorageError::Corrupt("bad magic".into()));
        }
        if buf.get_u32_le() != VERSION {
            return Err(StorageError::Corrupt("unsupported version".into()));
        }
        let dims = buf.get_u32_le() as usize;
        if dims == 0 {
            return Err(StorageError::Corrupt("zero dimensions".into()));
        }
        let page_capacity = usize::try_from(buf.get_u64_le())
            .map_err(|_| StorageError::Corrupt("page capacity overflow".into()))?;
        let cost_model = CostModel {
            seek_ns: buf.get_u64_le(),
            per_point_ns: buf.get_u64_le(),
            probe_ns: buf.get_u64_le(),
            index_entry_ns: buf.get_u64_le(),
        };
        let n = checked_len(buf.get_u64_le(), dims * 8, &buf, "slot count")?;

        let bitmap_len = n.div_ceil(8);
        need(&buf, bitmap_len, "live bitmap")?;
        let mut bitmap = vec![0u8; bitmap_len];
        buf.copy_to_slice(&mut bitmap);
        let live: Vec<bool> = (0..n).map(|i| bitmap[i / 8] & (1 << (i % 8)) != 0).collect();

        let payload_len = n
            .checked_mul(dims * 8)
            .ok_or_else(|| StorageError::Corrupt("point payload overflow".into()))?;
        need(&buf, payload_len, "points")?;
        let mut points = Vec::with_capacity(n);
        for slot in 0..n {
            let coords: Vec<f64> = (0..dims).map(|_| buf.get_f64_le()).collect();
            if coords.iter().any(|c| c.is_nan()) {
                return Err(StorageError::Corrupt(format!("NaN in slot {slot}")));
            }
            points.push(Point::new_unchecked(coords));
        }

        Table::from_parts(points, live, TableConfig { page_capacity, cost_model })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycache_geom::Constraints;

    /// The one ambient read in this module, at the very edge: tests
    /// resolve the system tmpdir once and route it through the explicit
    /// [`SnapshotDir`] config like any other caller would.
    fn store() -> SnapshotDir {
        SnapshotDir::new(std::env::temp_dir())
    }

    fn temp(name: &str) -> std::path::PathBuf {
        store().path(&format!("skycache-test-{}-{name}", std::process::id()))
    }

    fn sample_table() -> Table {
        let points: Vec<Point> = (0..500)
            .map(|i| {
                let x = f64::from(i % 23);
                let y = f64::from(i % 31);
                Point::from(vec![x, y])
            })
            .collect();
        let mut t = Table::build(points, TableConfig::default()).unwrap();
        t.delete(13).unwrap();
        t.delete(255).unwrap();
        t.insert(Point::from(vec![99.0, 99.0])).unwrap();
        t
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample_table();
        let path = temp("roundtrip");
        t.save(&path).unwrap();
        let loaded = Table::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.len(), t.len());
        assert_eq!(loaded.dims(), t.dims());
        assert!(!loaded.is_live(13));
        assert!(!loaded.is_live(255));
        for c in [
            Constraints::from_pairs(&[(0.0, 22.0), (0.0, 30.0)]).unwrap(),
            Constraints::from_pairs(&[(5.0, 9.0), (7.0, 12.0)]).unwrap(),
            Constraints::from_pairs(&[(99.0, 99.0), (99.0, 99.0)]).unwrap(),
        ] {
            let plan = crate::table::FetchPlan::constrained(&c);
            let (a, b) = (t.fetch_plan(&plan), loaded.fetch_plan(&plan));
            // Row order among equal index keys is unspecified; compare sets.
            let mut ra = a.rows.clone();
            let mut rb = b.rows.clone();
            ra.sort_by_key(|r| r.id);
            rb.sort_by_key(|r| r.id);
            assert_eq!(ra, rb, "constraints {c:?}");
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn snapshot_dir_round_trips_by_name() {
        let t = sample_table();
        let dir = store();
        let name = format!("skycache-test-{}-named", std::process::id());
        let written = dir.save(&t, &name).unwrap();
        assert_eq!(written, dir.path(&name));
        let loaded = dir.load(&name).unwrap();
        std::fs::remove_file(&written).ok();
        assert_eq!(loaded.len(), t.len());
        assert_eq!(loaded.dims(), t.dims());
    }

    #[test]
    fn oversized_slot_count_is_rejected_before_allocating() {
        // Hand-build a header whose slot count claims more points than
        // the file can possibly carry; load must fail in the validator,
        // not inside an attempted huge allocation.
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&VERSION.to_le_bytes());
        data.extend_from_slice(&2u32.to_le_bytes()); // dims
        data.extend_from_slice(&64u64.to_le_bytes()); // page_capacity
        data.extend_from_slice(&[0u8; 32]); // cost model
        data.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd slot count
        let checksum = super::fnv1a(&data);
        data.extend_from_slice(&checksum.to_le_bytes());
        let path = temp("oversize");
        std::fs::write(&path, &data).unwrap();
        let err = Table::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn corruption_is_detected() {
        let t = sample_table();
        let path = temp("corrupt");
        t.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = Table::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn truncation_is_detected() {
        let t = sample_table();
        let path = temp("trunc");
        t.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let err = Table::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = temp("magic");
        let mut data = b"NOPE".to_vec();
        data.extend_from_slice(&[0u8; 64]);
        let checksum = super::fnv1a(&data);
        data.extend_from_slice(&checksum.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        let err = Table::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Table::load("/nonexistent/skycache.skyc").unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "{err:?}");
    }
}
