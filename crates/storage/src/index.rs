use skycache_geom::{Interval, Point};

use crate::table::RowId;

/// A read-optimized single-dimension index: the B-tree stand-in.
///
/// Keys are stored as a sorted `(key, row)` array; range location is two
/// binary searches (`O(log n)`), mirroring a B-tree descent, and the rows
/// of a range are a contiguous slice, mirroring a leaf scan.
#[derive(Clone, Debug)]
pub struct ColumnIndex {
    /// Sorted keys.
    keys: Vec<f64>,
    /// Row ids parallel to `keys`.
    rows: Vec<RowId>,
}

impl ColumnIndex {
    /// Builds the index of dimension `dim` over `points`.
    pub fn build(points: &[Point], dim: usize) -> Self {
        let mut pairs: Vec<(f64, RowId)> =
            points.iter().enumerate().map(|(row, p)| (p[dim], row as RowId)).collect();
        pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        ColumnIndex {
            keys: pairs.iter().map(|p| p.0).collect(),
            rows: pairs.iter().map(|p| p.1).collect(),
        }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Half-open position range `[start, end)` of keys inside `iv`.
    ///
    /// Keys are sorted by `total_cmp`, so the binary-search predicates must
    /// compare in the same order — mixing numeric `<`/`<=` with a
    /// total-order sort can land a boundary in the middle of a
    /// `-0.0`/`0.0` run. To keep *numeric* range semantics (the interval
    /// bound `0.0` must admit `-0.0` keys and vice versa), each finite
    /// bound is first normalized to the zero of the appropriate sign.
    pub(crate) fn locate(&self, iv: &Interval) -> (usize, usize) {
        let start = if iv.lo() == f64::NEG_INFINITY {
            0
        } else if iv.lo_open() {
            // Exclude everything numerically equal to `lo`: for a zero
            // bound that means both zero signs, so compare against `0.0`.
            let lo = norm_up(iv.lo());
            self.keys.partition_point(|&k| k.total_cmp(&lo).is_le())
        } else {
            // Include everything numerically equal to `lo`: compare
            // against `-0.0` so `-0.0` keys survive a `0.0` bound.
            let lo = norm_down(iv.lo());
            self.keys.partition_point(|&k| k.total_cmp(&lo).is_lt())
        };
        let end = if iv.hi() == f64::INFINITY {
            self.keys.len()
        } else if iv.hi_open() {
            let hi = norm_down(iv.hi());
            self.keys.partition_point(|&k| k.total_cmp(&hi).is_lt())
        } else {
            let hi = norm_up(iv.hi());
            self.keys.partition_point(|&k| k.total_cmp(&hi).is_le())
        };
        (start, end.max(start))
    }

    /// Row ids at sorted-key positions `[start, end)`.
    #[inline]
    pub(crate) fn rows_at(&self, start: usize, end: usize) -> &[RowId] {
        &self.rows[start..end]
    }

    /// Number of rows whose key lies in `iv`.
    pub fn count_in(&self, iv: &Interval) -> usize {
        let (s, e) = self.locate(iv);
        e - s
    }

    /// Row ids whose key lies in `iv`, in key order.
    pub fn rows_in(&self, iv: &Interval) -> &[RowId] {
        let (s, e) = self.locate(iv);
        &self.rows[s..e]
    }

    /// Smallest and largest key, if any.
    pub fn key_bounds(&self) -> Option<(f64, f64)> {
        Some((*self.keys.first()?, *self.keys.last()?))
    }

    /// Inserts a `(key, row)` entry, keeping keys sorted (`O(n)` memmove,
    /// like a B-tree leaf insert without node splits — adequate for the
    /// moderate update rates of the dynamic-data extension).
    pub fn insert(&mut self, key: f64, row: RowId) {
        debug_assert!(!key.is_nan());
        // total_cmp, not `<`: a numeric predicate would file `0.0` before
        // an existing `-0.0` and silently break the total sort order that
        // `build` established (and that `locate` relies on).
        let pos = self.keys.partition_point(|&k| k.total_cmp(&key).is_lt());
        self.keys.insert(pos, key);
        self.rows.insert(pos, row);
    }

    /// Appends an entry known to be `>=` (in total order) every existing
    /// key (bulk reconstruction fast path).
    pub(crate) fn push_sorted(&mut self, key: f64, row: RowId) {
        debug_assert!(self.keys.last().is_none_or(|&k| k.total_cmp(&key).is_le()));
        self.keys.push(key);
        self.rows.push(row);
    }

    /// Removes the entry for `(key, row)`. Returns whether it existed.
    pub fn remove(&mut self, key: f64, row: RowId) -> bool {
        // The run of numerically equal keys can mix `-0.0` and `0.0`;
        // normalize the bounds so the scan covers the whole run.
        let lo = norm_down(key);
        let hi = norm_up(key);
        let start = self.keys.partition_point(|&k| k.total_cmp(&lo).is_lt());
        let end = self.keys.partition_point(|&k| k.total_cmp(&hi).is_le());
        for i in start..end {
            if self.rows[i] == row {
                self.keys.remove(i);
                self.rows.remove(i);
                return true;
            }
        }
        false
    }
}

/// `±0.0` → `-0.0`, the `total_cmp`-smaller zero; other values unchanged.
#[inline]
fn norm_down(v: f64) -> f64 {
    if v == 0.0 {
        -0.0
    } else {
        v
    }
}

/// `±0.0` → `0.0`, the `total_cmp`-larger zero; other values unchanged.
#[inline]
fn norm_up(v: f64) -> f64 {
    if v == 0.0 {
        0.0
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> ColumnIndex {
        let pts: Vec<Point> =
            [5.0, 1.0, 3.0, 3.0, 9.0].iter().map(|&v| Point::from(vec![v, 0.0])).collect();
        ColumnIndex::build(&pts, 0)
    }

    #[test]
    fn build_sorts_keys() {
        let i = idx();
        assert_eq!(i.len(), 5);
        assert_eq!(i.key_bounds(), Some((1.0, 9.0)));
    }

    #[test]
    fn count_closed_range() {
        let i = idx();
        assert_eq!(i.count_in(&Interval::closed(3.0, 5.0)), 3);
        assert_eq!(i.count_in(&Interval::closed(0.0, 10.0)), 5);
        assert_eq!(i.count_in(&Interval::closed(6.0, 8.0)), 0);
    }

    #[test]
    fn open_endpoints_exclude_keys() {
        let i = idx();
        assert_eq!(i.count_in(&Interval::new(3.0, 5.0, true, false)), 1); // only 5
        assert_eq!(i.count_in(&Interval::new(3.0, 5.0, false, true)), 2); // the 3s
        assert_eq!(i.count_in(&Interval::new(3.0, 3.0, true, true)), 0);
    }

    #[test]
    fn unbounded_ranges() {
        let i = idx();
        assert_eq!(i.count_in(&Interval::closed(f64::NEG_INFINITY, f64::INFINITY)), 5);
        assert_eq!(i.count_in(&Interval::closed(f64::NEG_INFINITY, 3.0)), 3);
        assert_eq!(i.count_in(&Interval::closed(5.0, f64::INFINITY)), 2);
    }

    #[test]
    fn rows_in_returns_matching_rows() {
        let i = idx();
        let rows = i.rows_in(&Interval::closed(3.0, 3.0));
        // Rows 2 and 3 hold key 3.0 (order between equal keys unspecified).
        let mut rows = rows.to_vec();
        rows.sort_unstable();
        assert_eq!(rows, vec![2, 3]);
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let mut i = idx();
        i.insert(4.0, 9);
        assert_eq!(i.len(), 6);
        assert_eq!(i.count_in(&Interval::closed(3.5, 4.5)), 1);
        assert_eq!(i.rows_in(&Interval::closed(4.0, 4.0)), &[9]);
        i.insert(0.5, 10);
        assert_eq!(i.key_bounds(), Some((0.5, 9.0)));
    }

    #[test]
    fn remove_targets_exact_entry() {
        let mut i = idx();
        // Two rows hold key 3.0; remove only row 3.
        assert!(i.remove(3.0, 3));
        assert_eq!(i.count_in(&Interval::closed(3.0, 3.0)), 1);
        assert_eq!(i.rows_in(&Interval::closed(3.0, 3.0)), &[2]);
        // Removing a non-existent pairing is a no-op.
        assert!(!i.remove(3.0, 99));
        assert!(!i.remove(77.0, 2));
        assert_eq!(i.len(), 4);
    }

    #[test]
    fn signed_zeros_keep_numeric_range_semantics() {
        // total_cmp sorts -0.0 before 0.0; numerically they are equal, so
        // every range bound of either zero sign must treat the whole run
        // of zeros as one key value.
        let pts: Vec<Point> =
            [-0.0, 2.0, 0.0, -1.0].iter().map(|&v| Point::from(vec![v, 0.0])).collect();
        let i = ColumnIndex::build(&pts, 0);
        assert_eq!(i.count_in(&Interval::closed(0.0, 0.0)), 2);
        assert_eq!(i.count_in(&Interval::closed(-0.0, 0.0)), 2);
        assert_eq!(i.count_in(&Interval::closed(-1.0, -0.0)), 3);
        // Open bounds exclude both zero signs...
        assert_eq!(i.count_in(&Interval::new(0.0, 2.0, true, false)), 1);
        assert_eq!(i.count_in(&Interval::new(-1.0, -0.0, false, true)), 1);
        // ...and never split the zero run down the middle.
        assert_eq!(i.count_in(&Interval::new(-0.0, f64::INFINITY, true, false)), 1);
        let mut rows = i.rows_in(&Interval::closed(0.0, 0.0)).to_vec();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 2]);
    }

    #[test]
    fn insert_mixed_zero_signs_keeps_total_order() {
        let mut i = ColumnIndex::build(&[], 0);
        // A numeric `<` insert predicate would place 0.0 *before* an
        // existing -0.0, breaking the total_cmp sort order.
        i.insert(-0.0, 1);
        i.insert(0.0, 2);
        i.insert(-0.0, 3);
        i.insert(-1.0, 4);
        assert_eq!(i.count_in(&Interval::closed(-1.0, 0.0)), 4);
        let mut zeros = i.rows_in(&Interval::closed(0.0, 0.0)).to_vec();
        zeros.sort_unstable();
        assert_eq!(zeros, vec![1, 2, 3]);
        // remove() must find a row anywhere in the mixed-sign zero run.
        assert!(i.remove(0.0, 1));
        assert!(i.remove(-0.0, 2));
        assert_eq!(i.count_in(&Interval::closed(0.0, 0.0)), 1);
        assert_eq!(i.rows_in(&Interval::closed(-0.0, -0.0)), &[3]);
    }

    #[test]
    fn empty_index() {
        let i = ColumnIndex::build(&[], 0);
        assert!(i.is_empty());
        assert_eq!(i.count_in(&Interval::closed(0.0, 1.0)), 0);
        assert_eq!(i.key_bounds(), None);
    }
}
