use skycache_geom::{Interval, Point};

use crate::table::RowId;

/// A read-optimized single-dimension index: the B-tree stand-in.
///
/// Keys are stored as a sorted `(key, row)` array; range location is two
/// binary searches (`O(log n)`), mirroring a B-tree descent, and the rows
/// of a range are a contiguous slice, mirroring a leaf scan.
#[derive(Clone, Debug)]
pub struct ColumnIndex {
    /// Sorted keys.
    keys: Vec<f64>,
    /// Row ids parallel to `keys`.
    rows: Vec<RowId>,
}

impl ColumnIndex {
    /// Builds the index of dimension `dim` over `points`.
    pub fn build(points: &[Point], dim: usize) -> Self {
        let mut pairs: Vec<(f64, RowId)> =
            points.iter().enumerate().map(|(row, p)| (p[dim], row as RowId)).collect();
        pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        ColumnIndex {
            keys: pairs.iter().map(|p| p.0).collect(),
            rows: pairs.iter().map(|p| p.1).collect(),
        }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Half-open position range `[start, end)` of keys inside `iv`.
    fn locate(&self, iv: &Interval) -> (usize, usize) {
        let start = if iv.lo() == f64::NEG_INFINITY {
            0
        } else if iv.lo_open() {
            self.keys.partition_point(|&k| k <= iv.lo())
        } else {
            self.keys.partition_point(|&k| k < iv.lo())
        };
        let end = if iv.hi() == f64::INFINITY {
            self.keys.len()
        } else if iv.hi_open() {
            self.keys.partition_point(|&k| k < iv.hi())
        } else {
            self.keys.partition_point(|&k| k <= iv.hi())
        };
        (start, end.max(start))
    }

    /// Number of rows whose key lies in `iv`.
    pub fn count_in(&self, iv: &Interval) -> usize {
        let (s, e) = self.locate(iv);
        e - s
    }

    /// Row ids whose key lies in `iv`, in key order.
    pub fn rows_in(&self, iv: &Interval) -> &[RowId] {
        let (s, e) = self.locate(iv);
        &self.rows[s..e]
    }

    /// Smallest and largest key, if any.
    pub fn key_bounds(&self) -> Option<(f64, f64)> {
        Some((*self.keys.first()?, *self.keys.last()?))
    }

    /// Inserts a `(key, row)` entry, keeping keys sorted (`O(n)` memmove,
    /// like a B-tree leaf insert without node splits — adequate for the
    /// moderate update rates of the dynamic-data extension).
    pub fn insert(&mut self, key: f64, row: RowId) {
        debug_assert!(!key.is_nan());
        let pos = self.keys.partition_point(|&k| k < key);
        self.keys.insert(pos, key);
        self.rows.insert(pos, row);
    }

    /// Appends an entry known to be `>=` every existing key (bulk
    /// reconstruction fast path).
    pub(crate) fn push_sorted(&mut self, key: f64, row: RowId) {
        debug_assert!(self.keys.last().is_none_or(|&k| k <= key));
        self.keys.push(key);
        self.rows.push(row);
    }

    /// Removes the entry for `(key, row)`. Returns whether it existed.
    pub fn remove(&mut self, key: f64, row: RowId) -> bool {
        let start = self.keys.partition_point(|&k| k < key);
        let end = self.keys.partition_point(|&k| k <= key);
        for i in start..end {
            if self.rows[i] == row {
                self.keys.remove(i);
                self.rows.remove(i);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> ColumnIndex {
        let pts: Vec<Point> =
            [5.0, 1.0, 3.0, 3.0, 9.0].iter().map(|&v| Point::from(vec![v, 0.0])).collect();
        ColumnIndex::build(&pts, 0)
    }

    #[test]
    fn build_sorts_keys() {
        let i = idx();
        assert_eq!(i.len(), 5);
        assert_eq!(i.key_bounds(), Some((1.0, 9.0)));
    }

    #[test]
    fn count_closed_range() {
        let i = idx();
        assert_eq!(i.count_in(&Interval::closed(3.0, 5.0)), 3);
        assert_eq!(i.count_in(&Interval::closed(0.0, 10.0)), 5);
        assert_eq!(i.count_in(&Interval::closed(6.0, 8.0)), 0);
    }

    #[test]
    fn open_endpoints_exclude_keys() {
        let i = idx();
        assert_eq!(i.count_in(&Interval::new(3.0, 5.0, true, false)), 1); // only 5
        assert_eq!(i.count_in(&Interval::new(3.0, 5.0, false, true)), 2); // the 3s
        assert_eq!(i.count_in(&Interval::new(3.0, 3.0, true, true)), 0);
    }

    #[test]
    fn unbounded_ranges() {
        let i = idx();
        assert_eq!(i.count_in(&Interval::closed(f64::NEG_INFINITY, f64::INFINITY)), 5);
        assert_eq!(i.count_in(&Interval::closed(f64::NEG_INFINITY, 3.0)), 3);
        assert_eq!(i.count_in(&Interval::closed(5.0, f64::INFINITY)), 2);
    }

    #[test]
    fn rows_in_returns_matching_rows() {
        let i = idx();
        let rows = i.rows_in(&Interval::closed(3.0, 3.0));
        // Rows 2 and 3 hold key 3.0 (order between equal keys unspecified).
        let mut rows = rows.to_vec();
        rows.sort_unstable();
        assert_eq!(rows, vec![2, 3]);
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let mut i = idx();
        i.insert(4.0, 9);
        assert_eq!(i.len(), 6);
        assert_eq!(i.count_in(&Interval::closed(3.5, 4.5)), 1);
        assert_eq!(i.rows_in(&Interval::closed(4.0, 4.0)), &[9]);
        i.insert(0.5, 10);
        assert_eq!(i.key_bounds(), Some((0.5, 9.0)));
    }

    #[test]
    fn remove_targets_exact_entry() {
        let mut i = idx();
        // Two rows hold key 3.0; remove only row 3.
        assert!(i.remove(3.0, 3));
        assert_eq!(i.count_in(&Interval::closed(3.0, 3.0)), 1);
        assert_eq!(i.rows_in(&Interval::closed(3.0, 3.0)), &[2]);
        // Removing a non-existent pairing is a no-op.
        assert!(!i.remove(3.0, 99));
        assert!(!i.remove(77.0, 2));
        assert_eq!(i.len(), 4);
    }

    #[test]
    fn empty_index() {
        let i = ColumnIndex::build(&[], 0);
        assert!(i.is_empty());
        assert_eq!(i.count_in(&Interval::closed(0.0, 1.0)), 0);
        assert_eq!(i.key_bounds(), None);
    }
}
