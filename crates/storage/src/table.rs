use std::time::Duration;

use skycache_geom::{Constraints, HyperRect, Kernel, Point};
use skycache_obs::{names, Recorder};

use crate::cost::{CostModel, FetchStats};
use crate::error::StorageError;
use crate::index::ColumnIndex;
use crate::scratch::{
    ExecView, FetchBuf, FetchScratch, FetchUnit, LaneWorkspace, ProbedDim, RegionProbe,
    RegionState, UnitKind,
};
use crate::Result;

/// Identifier of a stored row.
pub type RowId = u32;

/// A fetched row: its id plus a copy of the stored point.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Stable row identifier.
    pub id: RowId,
    /// The point's coordinates.
    pub point: Point,
}

/// Table construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct TableConfig {
    /// Points per heap page (affects page accounting only).
    pub page_capacity: usize,
    /// I/O latency model used to simulate fetch times.
    pub cost_model: CostModel,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig { page_capacity: 128, cost_model: CostModel::default() }
    }
}

/// Declarative description of one storage access: which regions to
/// range-query and how many concurrent I/O lanes to use.
///
/// This replaces the old quartet of `fetch` / `fetch_batch` /
/// `fetch_batch_parallel` / `fetch_constrained` entry points: callers
/// build a plan and hand it to [`Table::fetch_plan`].
#[derive(Clone, Debug, PartialEq)]
pub struct FetchPlan {
    /// Regions to fetch, one issued range query each.
    pub regions: Vec<HyperRect>,
    /// Concurrent I/O lanes; clamped to the number of executable units
    /// at execution time, so `1` (the default) is fully sequential.
    pub lanes: usize,
    /// Whether the planner may coalesce regions whose chosen-dimension
    /// index ranges overlap or abut into single range queries, and dedup
    /// row ids across regions. Off by default (exact per-region
    /// semantics, duplicates across overlapping regions preserved).
    pub coalesce: bool,
}

impl FetchPlan {
    /// A sequential plan over `regions`.
    pub fn new(regions: Vec<HyperRect>) -> Self {
        FetchPlan { regions, lanes: 1, coalesce: false }
    }

    /// A plan fetching a single region.
    pub fn single(region: HyperRect) -> Self {
        FetchPlan::new(vec![region])
    }

    /// The naive approach's constraint range query `RQ(C)`.
    pub fn constrained(c: &Constraints) -> Self {
        FetchPlan::single(c.region())
    }

    /// A coalescing plan over an MPR/composed-cover *remainder*: the
    /// region lists the planners emit routinely contain overlapping or
    /// abutting boxes (subtraction fragments, per-item unknown space),
    /// so each heap row must be fetched at most once for the merged
    /// skyline to stay duplicate-budget exact.
    pub fn remainder(regions: Vec<HyperRect>) -> Self {
        FetchPlan::new(regions).coalesced()
    }

    /// Sets the lane count (builder style).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Enables planner coalescing (builder style): each heap row is
    /// fetched at most once even when it lies in several candidate
    /// ranges, and overlapping/abutting index ranges merge into one
    /// range query. The saving is reported in
    /// [`FetchStats::regions_coalesced`].
    pub fn coalesced(mut self) -> Self {
        self.coalesce = true;
        self
    }

    /// The lane count [`Table::fetch_plan`] will actually use, before
    /// coalescing (a coalescing plan may execute on fewer lanes when
    /// regions merge into fewer units).
    pub fn resolved_lanes(&self) -> usize {
        self.lanes.clamp(1, self.regions.len().max(1))
    }
}

/// Result of executing a [`FetchPlan`].
#[derive(Clone, Debug, Default)]
pub struct FetchResult {
    /// Rows satisfying the query region(s).
    pub rows: Vec<Row>,
    /// I/O counters for the fetch.
    pub stats: FetchStats,
    /// Simulated latency under the table's [`CostModel`].
    pub simulated_latency: Duration,
    /// Per-lane simulated latency totals when the plan ran on more than
    /// one lane; empty for sequential plans. Left untouched by
    /// [`FetchResult::absorb`] (lane accounting does not compose across
    /// separate fetches).
    pub lane_latencies: Vec<Duration>,
}

impl FetchResult {
    /// Folds another fetch into this one (rows, counters and latency;
    /// `lane_latencies` is deliberately not merged).
    pub fn absorb(&mut self, other: FetchResult) {
        self.rows.extend(other.rows);
        self.stats.merge(&other.stats);
        self.simulated_latency += other.simulated_latency;
    }

    /// Publishes this result into a [`Recorder`] under the canonical
    /// `fetch.*` / `lanes.*` metric names — the single place the storage
    /// layer talks to observability, so call sites no longer hand-sum
    /// [`FetchStats`] fields. Heap-page accounting is derived separately
    /// (see [`Table::pages_touched`]) because it needs the table's page
    /// geometry.
    pub fn record_into(&self, rec: &mut dyn Recorder) {
        record_fetch(&self.stats, self.simulated_latency, &self.lane_latencies, rec);
    }
}

/// Result of [`Table::fetch_plan_into`]: accounting only. The fetched
/// rows stay inside the caller's [`FetchScratch`] as a borrowed columnar
/// view ([`FetchScratch::rows`]) — `Point`s are materialized only when a
/// caller crosses the public-API boundary (see [`Table::fetch_with`]).
#[derive(Clone, Debug, Default)]
pub struct FetchOutcome {
    /// I/O counters for the fetch (deduped work for coalescing plans).
    pub stats: FetchStats,
    /// Simulated latency under the table's [`CostModel`].
    pub simulated_latency: Duration,
    /// Per-lane simulated latency totals when the plan executed on more
    /// than one lane; empty for sequential plans.
    pub lane_latencies: Vec<Duration>,
}

impl FetchOutcome {
    /// Publishes this outcome into a [`Recorder`]; see
    /// [`FetchResult::record_into`].
    pub fn record_into(&self, rec: &mut dyn Recorder) {
        record_fetch(&self.stats, self.simulated_latency, &self.lane_latencies, rec);
    }
}

/// Shared `fetch.*` / `lanes.*` publication for [`FetchResult`] and
/// [`FetchOutcome`].
fn record_fetch(
    stats: &FetchStats,
    simulated_latency: Duration,
    lane_latencies: &[Duration],
    rec: &mut dyn Recorder,
) {
    rec.add_counter(names::FETCH_REGIONS, stats.range_queries_issued);
    rec.add_counter(names::FETCH_RQ_EXECUTED, stats.range_queries_executed);
    rec.add_counter(names::FETCH_RQ_EMPTY, stats.range_queries_empty);
    rec.add_counter(names::FETCH_POINTS_READ, stats.points_read);
    rec.add_counter(names::FETCH_HEAP_FETCHES, stats.heap_fetches);
    rec.add_counter(names::FETCH_ROWS_MATCHED, stats.rows_matched);
    rec.add_counter(names::FETCH_INDEX_PROBES, stats.index_probes);
    rec.add_counter(names::FETCH_INDEX_ENTRIES, stats.index_entries_scanned);
    if stats.regions_coalesced > 0 {
        rec.add_counter(names::FETCH_REGIONS_COALESCED, stats.regions_coalesced);
    }
    rec.observe_value(names::FETCH_LATENCY_NS, simulated_latency.as_nanos() as f64);
    if !lane_latencies.is_empty() {
        let lanes = lane_latencies.len() as f64;
        let mut sum = 0.0;
        let mut slowest = 0.0f64;
        for lane in lane_latencies {
            let ns = lane.as_nanos() as f64;
            rec.observe_value(names::LANES_FETCH_LATENCY_NS, ns);
            sum += ns;
            slowest = slowest.max(ns);
        }
        rec.set_gauge(names::LANES_FETCH, lanes);
        let imbalance = if sum > 0.0 { slowest / (sum / lanes) } else { 1.0 };
        rec.set_gauge(names::LANES_FETCH_IMBALANCE, imbalance);
    }
}

/// A read-only table of points: paged heap plus one [`ColumnIndex`] per
/// dimension (the paper's "PostgreSQL with each dimension indexed by a
/// standard B-tree").
#[derive(Clone, Debug)]
pub struct Table {
    points: Vec<Point>,
    /// Liveness per heap slot; deletions tombstone instead of compacting
    /// so row ids stay stable (index entries of dead rows are removed, so
    /// index-driven plans never see them).
    live: Vec<bool>,
    live_count: usize,
    indexes: Vec<ColumnIndex>,
    dims: usize,
    config: TableConfig,
}

impl Table {
    /// Builds a table (heap + all indexes) from a non-empty point set.
    pub fn build(points: Vec<Point>, config: TableConfig) -> Result<Self> {
        if config.page_capacity == 0 {
            return Err(StorageError::InvalidPageCapacity);
        }
        let dims = points.first().ok_or(StorageError::EmptyTable)?.dims();
        if let Some(bad) = points.iter().find(|p| p.dims() != dims) {
            return Err(StorageError::DimensionMismatch { expected: dims, actual: bad.dims() });
        }
        if points.len() > RowId::MAX as usize {
            return Err(StorageError::InvalidPageCapacity);
        }
        let indexes = (0..dims).map(|d| ColumnIndex::build(&points, d)).collect();
        let live = vec![true; points.len()];
        let live_count = points.len();
        Ok(Table { points, live, live_count, indexes, dims, config })
    }

    /// Reconstructs a table from persisted parts (heap slots plus a
    /// liveness bitmap), rebuilding the per-dimension indexes over the
    /// live rows only.
    pub(crate) fn from_parts(
        points: Vec<Point>,
        live: Vec<bool>,
        config: TableConfig,
    ) -> Result<Self> {
        if config.page_capacity == 0 {
            return Err(StorageError::InvalidPageCapacity);
        }
        if points.len() != live.len() {
            return Err(StorageError::Corrupt("liveness bitmap length mismatch".into()));
        }
        let dims = points.first().ok_or(StorageError::EmptyTable)?.dims();
        if let Some(bad) = points.iter().find(|p| p.dims() != dims) {
            return Err(StorageError::DimensionMismatch { expected: dims, actual: bad.dims() });
        }
        let live_count = live.iter().filter(|&&l| l).count();
        let mut indexes: Vec<ColumnIndex> = Vec::with_capacity(dims);
        for d in 0..dims {
            let mut index = ColumnIndex::build(&[], d);
            // Construction, not a kernel: the only inbound "hot" edge is the
            // name collision AtomicU8::load ↔ persist::load (Kernel::for_dims
            // never reaches table building).
            let mut pairs: Vec<(f64, RowId)> = points
                .iter()
                .enumerate()
                .filter(|&(row, _)| live[row])
                .map(|(row, p)| (p[d], row as RowId))
                .collect(); // skylint: allow(hot-path-alloc) — name-collision edge, see above.
            pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            for (key, row) in pairs {
                index.push_sorted(key, row);
            }
            // skylint: allow(hot-path-alloc) — same name-collision edge.
            indexes.push(index);
        }
        Ok(Table { points, live, live_count, indexes, dims, config })
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Number of heap slots, including tombstoned rows.
    pub fn slot_count(&self) -> usize {
        self.points.len()
    }

    /// Whether the table holds no live points.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Dimensionality of stored points.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The table's configuration.
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    /// Index-only emptiness probe: `true` iff the per-dimension indexes
    /// prove the region holds no rows, without any heap access.
    ///
    /// This is the planning-time emptiness detection of
    /// [`Table::fetch_plan`] exposed as a standalone predicate so callers
    /// (the service layer's negative cache) can classify a constraint
    /// region as provably empty before committing to a full query.
    /// Conservative: a `false` answer means "not provably empty", not
    /// "non-empty" — a region can pass every single-dimension probe and
    /// still match no row.
    pub fn probe_region_empty(&self, region: &HyperRect) -> bool {
        assert_eq!(region.dims(), self.dims, "query/table dimensionality mismatch");
        if region.is_empty() {
            return true;
        }
        for (dim, iv) in region.intervals().iter().enumerate() {
            if iv.lo() == f64::NEG_INFINITY && iv.hi() == f64::INFINITY {
                continue; // no predicate on this dimension
            }
            let (lo, hi) = self.indexes[dim].locate(iv);
            if lo == hi {
                return true;
            }
        }
        false
    }

    /// Direct access to a stored point (no I/O accounting; for index
    /// construction and tests).
    pub fn point(&self, row: RowId) -> &Point {
        &self.points[row as usize]
    }

    /// All heap slots in row order, *including logically deleted rows*
    /// (no I/O accounting). Correct for tables that have not been mutated;
    /// prefer [`Table::live_points`] after deletions.
    pub fn all_points(&self) -> &[Point] {
        &self.points
    }

    /// Live `(row, point)` pairs in row order (no I/O accounting; used to
    /// bulk-load secondary structures such as the BBS R-tree).
    pub fn live_points(&self) -> impl Iterator<Item = (RowId, &Point)> {
        self.points
            .iter()
            .enumerate()
            .filter(|&(row, _)| self.live[row])
            .map(|(row, p)| (row as RowId, p))
    }

    /// Whether a row is live.
    pub fn is_live(&self, row: RowId) -> bool {
        self.live.get(row as usize).copied().unwrap_or(false)
    }

    /// Appends a point (the dynamic-data extension, paper Section 6.2),
    /// maintaining every per-dimension index. Returns the new row id.
    pub fn insert(&mut self, point: Point) -> Result<RowId> {
        if point.dims() != self.dims {
            return Err(StorageError::DimensionMismatch {
                expected: self.dims,
                actual: point.dims(),
            });
        }
        if self.points.len() >= RowId::MAX as usize {
            return Err(StorageError::InvalidPageCapacity);
        }
        let row = self.points.len() as RowId;
        for (dim, index) in self.indexes.iter_mut().enumerate() {
            index.insert(point[dim], row);
        }
        self.points.push(point);
        self.live.push(true);
        self.live_count += 1;
        Ok(row)
    }

    /// Deletes a row (tombstoning its heap slot and removing its index
    /// entries). Returns the deleted point, or `None` if the row does not
    /// exist or was already deleted.
    pub fn delete(&mut self, row: RowId) -> Option<Point> {
        let idx = row as usize;
        if !self.live.get(idx).copied().unwrap_or(false) {
            return None;
        }
        self.live[idx] = false;
        self.live_count -= 1;
        let point = self.points[idx].clone();
        for (dim, index) in self.indexes.iter_mut().enumerate() {
            let removed = index.remove(point[dim], row);
            debug_assert!(removed, "index out of sync with heap");
        }
        Some(point)
    }

    /// Heap page of a row.
    pub fn page_of(&self, row: RowId) -> usize {
        row as usize / self.config.page_capacity
    }

    /// Executes a [`FetchPlan`] with owned-row materialization — the
    /// compatibility entry point. Equivalent to [`Table::fetch_with`]
    /// over a throwaway scratch; hot callers should hold a
    /// [`FetchScratch`] and use [`Table::fetch_plan_into`] instead.
    pub fn fetch_plan(&self, plan: &FetchPlan) -> FetchResult {
        let mut scratch = FetchScratch::new();
        self.fetch_with(plan, &mut scratch)
    }

    /// Executes a [`FetchPlan`] via a reusable scratch, materializing
    /// owned [`Row`]s from the block buffer at the end. This is the
    /// public-API boundary where `Point` allocation is allowed; the
    /// fetch itself runs allocation-free through
    /// [`Table::fetch_plan_into`].
    pub fn fetch_with(&self, plan: &FetchPlan, scratch: &mut FetchScratch) -> FetchResult {
        let outcome = self.fetch_plan_into(plan, scratch);
        let buf = scratch.rows();
        let rows: Vec<Row> = buf
            .ids()
            .iter()
            .enumerate()
            .map(|(i, &id)| Row { id, point: Point::new_unchecked(buf.row(i).to_vec()) })
            .collect();
        FetchResult {
            rows,
            stats: outcome.stats,
            simulated_latency: outcome.simulated_latency,
            lane_latencies: outcome.lane_latencies,
        }
    }

    /// Executes a [`FetchPlan`] into a caller-provided [`FetchScratch`]
    /// — the table's zero-copy fetch kernel. The fetched rows are left
    /// in `scratch` ([`FetchScratch::rows`]) as a columnar block view;
    /// no `Point` is cloned and, after the scratch buffers have warmed
    /// up, no allocation happens at all.
    ///
    /// Execution model:
    ///
    /// 1. **Plan**: every region is probed against the per-dimension
    ///    indexes (empty and degenerate regions are answered from the
    ///    index alone — "the B-trees detect the empty queries", paper
    ///    Section 7.3.2) and annotated with its most selective
    ///    dimension's index position range.
    /// 2. **Coalesce** (when [`FetchPlan::coalesce`] is set): regions
    ///    whose chosen-dimension position ranges overlap or abut merge
    ///    into one range query each; units execute
    ///    cheapest-estimate-first and each heap row is emitted at most
    ///    once across the whole plan. Without coalescing, one unit per
    ///    region executes in region order with exact per-region
    ///    semantics (duplicates across overlapping regions preserved).
    /// 3. **Execute**: units are dealt round-robin onto
    ///    `min(plan.lanes, units)` lanes (scoped threads when more than
    ///    one — small plans never spawn idle threads). Rows and every
    ///    [`FetchStats`] counter are **identical** regardless of the
    ///    lane count: lane buffers merge in unit order, counters
    ///    describe work done, which parallelism does not change. With
    ///    one lane `simulated_latency` is the sum over units; with `n`
    ///    lanes the plan is charged the slowest lane via
    ///    [`CostModel::critical_path_latency`] and per-lane totals are
    ///    exposed in [`FetchOutcome::lane_latencies`].
    ///
    /// Accounting contract: `range_queries_issued` counts plan regions,
    /// `range_queries_executed` counts range queries actually run after
    /// coalescing, their difference for non-empty regions is
    /// `regions_coalesced`, and `points_read` / `rows_matched` count the
    /// **deduped** emitted rows.
    pub fn fetch_plan_into(&self, plan: &FetchPlan, scratch: &mut FetchScratch) -> FetchOutcome {
        let mut outcome = FetchOutcome::default();
        scratch.begin(self.dims);

        // Phase 1: plan every region (index probes only).
        for region in &plan.regions {
            self.plan_region(region, scratch);
        }

        // Phase 2: group regions into executable units.
        let saved = scratch.build_units(plan.coalesce, &self.config.cost_model, self.points.len());

        // Phase 3: execute the units over the lanes.
        let lanes = plan.lanes.clamp(1, scratch.unit_count().max(1));
        let (view, lane_ws) = scratch.view_and_lanes(lanes);
        if let [ws] = lane_ws {
            self.run_lane(&plan.regions, view, 0, 1, ws);
        } else {
            std::thread::scope(|s| {
                for (lane, ws) in lane_ws.iter_mut().enumerate() {
                    s.spawn(move || self.run_lane(&plan.regions, view, lane, lanes, ws));
                }
            });
        }

        // Phase 4: merge lane buffers in unit order, dedup across units
        // when coalescing. A unit at execution position p ran as the
        // (p / lanes)-th segment of lane (p % lanes).
        let (view, out, lane_done, seen) = scratch.merge_parts(lanes);
        if plan.coalesce {
            seen.begin_pass(self.points.len());
        }
        for (u, unit) in view.units.iter().enumerate() {
            let exec_pos = unit.exec_pos as usize;
            let ws = &lane_done[exec_pos % lanes];
            let seg = ws.segs[exec_pos / lanes];
            debug_assert_eq!(seg.unit as usize, u);
            for i in seg.start as usize..seg.end as usize {
                if plan.coalesce && !seen.mark(ws.buf.ids()[i]) {
                    continue;
                }
                out.append_from(&ws.buf, i);
            }
        }
        for ws in lane_done {
            outcome.stats += ws.stats;
        }
        outcome.stats.rows_matched = out.len() as u64;
        outcome.stats.points_read = outcome.stats.rows_matched;
        outcome.stats.regions_coalesced = saved;

        if lanes > 1 {
            let lane_latencies = scratch.lane_latency_list(lanes);
            outcome.simulated_latency =
                self.config.cost_model.critical_path_latency(&lane_latencies);
            outcome.lane_latencies = lane_latencies;
        } else {
            outcome.simulated_latency = scratch.lane_total(0);
        }
        outcome
    }

    /// Plans one region: index probes, emptiness detection and chosen
    /// (most selective) dimension. Mirrors a DBMS with one B-tree per
    /// dimension; no heap access happens here.
    fn plan_region(&self, region: &HyperRect, scratch: &mut FetchScratch) {
        assert_eq!(region.dims(), self.dims, "query/table dimensionality mismatch");
        let mut stats = FetchStats { range_queries_issued: 1, ..Default::default() };
        let mark = scratch.probe_mark();

        if region.is_empty() {
            // Degenerate regions are rejected during planning, before any
            // index work.
            stats.range_queries_empty = 1;
            scratch.note_region(
                RegionProbe { probed_start: mark, probed_end: mark, ..Default::default() },
                stats,
            );
            return;
        }

        let mut empty = false;
        for (dim, iv) in region.intervals().iter().enumerate() {
            let unbounded = iv.lo() == f64::NEG_INFINITY && iv.hi() == f64::INFINITY;
            if unbounded {
                continue; // no predicate on this dimension
            }
            stats.index_probes += 1;
            let (lo, hi) = self.indexes[dim].locate(iv);
            if lo == hi {
                empty = true;
                break;
            }
            scratch.note_probe(dim as u32, lo as u32, hi as u32);
        }

        if empty {
            stats.range_queries_empty = 1;
            scratch.note_region(
                RegionProbe {
                    probed_start: mark,
                    probed_end: scratch.probe_mark(),
                    state: RegionState::Empty,
                    ..Default::default()
                },
                stats,
            );
            return;
        }

        let probe = match scratch.probes_since(mark).iter().min_by_key(|p| p.count()) {
            // Fully unbounded region: answered by a sequential heap scan.
            None => RegionProbe {
                probed_start: mark,
                probed_end: mark,
                state: RegionState::FullScan,
                ..Default::default()
            },
            Some(best) => RegionProbe {
                probed_start: mark,
                probed_end: scratch.probe_mark(),
                state: RegionState::Ready,
                chosen_dim: best.dim,
                pos_lo: best.pos_lo,
                pos_hi: best.pos_hi,
            },
        };
        scratch.note_region(probe, stats);
    }

    /// Executes the units dealt to one lane (execution positions
    /// `lane, lane + lanes, …`), staging rows and accounting in the
    /// lane's private workspace.
    fn run_lane(
        &self,
        regions: &[HyperRect],
        view: ExecView<'_>,
        lane: usize,
        lanes: usize,
        ws: &mut LaneWorkspace,
    ) {
        let mut pos = lane;
        while pos < view.exec_order.len() {
            let u = view.exec_order[pos];
            let unit = view.units[u as usize];
            let start = ws.buf.len() as u32;
            let stats = self.run_unit(regions, view, &unit, &mut ws.buf);
            ws.seg_mark(u, start, ws.buf.len() as u32);
            ws.total += self.config.cost_model.fetch_latency(&stats);
            ws.stats += stats;
            pos += lanes;
        }
    }

    /// Executes one unit, appending matching rows to `buf` and returning
    /// the unit's stats (planning stats of its member regions plus the
    /// heap work; `points_read` / `rows_matched` are set globally at
    /// merge time from the deduped emitted rows).
    ///
    /// Indexed single-region units choose between a **single-index
    /// scan** (fetch the chosen dimension's candidates from the heap,
    /// post-filter the rest — heap cost: the candidate count) and a
    /// **bitmap AND scan** (intersect the per-dimension row sets in the
    /// indexes, fetch only the intersection — heap cost ≈ the matching
    /// rows plus cheap per-entry index work), using the standard
    /// selectivity-product estimate. Merged units run one range query
    /// over the union slice and test each candidate against every member
    /// region (MPR regions are pairwise disjoint, so at most one
    /// matches).
    fn run_unit(
        &self,
        regions: &[HyperRect],
        view: ExecView<'_>,
        unit: &FetchUnit,
        buf: &mut FetchBuf,
    ) -> FetchStats {
        let members = view.members_of(unit);
        let mut stats = FetchStats::default();
        for &r in members {
            stats += view.region_stats[r as usize];
        }
        match unit.kind {
            UnitKind::Degenerate | UnitKind::ProbedEmpty => stats,
            UnitKind::Scan => {
                // Sequential scan of the heap (dead slots are still paged
                // in, hence still charged).
                stats.range_queries_executed += 1;
                stats.heap_fetches += self.points.len() as u64;
                for (row, point) in self.points.iter().enumerate() {
                    if self.live[row] {
                        buf.append(row as RowId, point.coords());
                    }
                }
                stats
            }
            UnitKind::Single => {
                let r = members[0];
                let region = &regions[r as usize];
                let probed = view.probed_of(r);
                let best_count = (unit.pos_hi - unit.pos_lo) as usize;
                // Plan choice: single-index heap cost vs bitmap estimate.
                let n = self.points.len() as f64;
                let est_match: f64 = probed.iter().fold(n, |acc, p| acc * (p.count() as f64 / n));
                let entries: usize = probed.iter().map(ProbedDim::count).sum();
                let ratio = self.config.cost_model.entry_to_point_ratio();
                let bitmap_cost = est_match + ratio * entries as f64;
                let use_bitmap = probed.len() > 1 && bitmap_cost < best_count as f64;

                // Either way the candidates of the most selective
                // dimension are scanned and filtered; the plans differ in
                // what touches the *heap*, i.e. in the accounting.
                stats.range_queries_executed += 1;
                let before = buf.len();
                let kernel = Kernel::for_dims(self.dims);
                for &row in self.indexes[unit.dim as usize]
                    .rows_at(unit.pos_lo as usize, unit.pos_hi as usize)
                {
                    let coords = self.points[row as usize].coords();
                    if region.contains_coords_k(kernel, coords) {
                        buf.append(row, coords);
                    }
                }
                if use_bitmap {
                    // Bitmap AND: every constrained index range is scanned
                    // (cheap, index-only); only intersecting rows hit the
                    // heap.
                    stats.index_entries_scanned += entries as u64;
                    stats.heap_fetches += (buf.len() - before) as u64;
                } else {
                    // Single-index scan: every candidate tuple of the most
                    // selective dimension is fetched and post-filtered.
                    stats.index_entries_scanned += best_count as u64;
                    stats.heap_fetches += best_count as u64;
                }
                stats
            }
            UnitKind::Merged => {
                // One range query over the merged index slice; each
                // candidate is fetched once and tested against the member
                // regions. Members arrive sorted by `pos_lo` and the slice
                // is walked in position order, so a sliding activation
                // window `[first, last)` keeps the per-candidate test to
                // the members whose probed range can still cover the
                // current position instead of all of them.
                let span = (unit.pos_hi - unit.pos_lo) as u64;
                stats.range_queries_executed += 1;
                stats.heap_fetches += span;
                stats.index_entries_scanned += span;
                let rows = self.indexes[unit.dim as usize]
                    .rows_at(unit.pos_lo as usize, unit.pos_hi as usize);
                let (mut first, mut last) = (0usize, 0usize);
                let kernel = Kernel::for_dims(self.dims);
                for (offset, &row) in rows.iter().enumerate() {
                    let pos = unit.pos_lo + offset as u32;
                    while last < members.len() && view.regions[members[last] as usize].pos_lo <= pos
                    {
                        last += 1;
                    }
                    while first < last && view.regions[members[first] as usize].pos_hi <= pos {
                        first += 1;
                    }
                    let coords = self.points[row as usize].coords();
                    // MPR regions are pairwise disjoint: at most one member
                    // matches, so `any` short-circuits on the first hit.
                    if members[first..last].iter().any(|&r| {
                        pos < view.regions[r as usize].pos_hi
                            && regions[r as usize].contains_coords_k(kernel, coords)
                    }) {
                        buf.append(row, coords);
                    }
                }
                stats
            }
        }
    }

    /// Distinct heap pages touched by a set of fetched rows (the derived
    /// `fetch.pages_touched` metric; needs the table's page geometry, so
    /// it lives here rather than on [`FetchResult`]).
    pub fn pages_touched(&self, rows: &[Row]) -> u64 {
        let mut pages = std::collections::BTreeSet::new();
        for row in rows {
            pages.insert(self.page_of(row.id));
        }
        pages.len() as u64
    }

    /// [`Table::pages_touched`] over bare row ids (the block-path variant,
    /// fed from [`FetchBuf::ids`]).
    pub fn pages_touched_ids(&self, ids: &[RowId]) -> u64 {
        let mut pages = std::collections::BTreeSet::new();
        for &id in ids {
            pages.insert(self.page_of(id));
        }
        pages.len() as u64
    }

    /// Executes one range query over a (possibly half-open) region.
    #[deprecated(note = "use Table::fetch_plan with FetchPlan::single")]
    pub fn fetch(&self, region: &HyperRect) -> FetchResult {
        self.fetch_plan(&FetchPlan::single(region.clone()))
    }

    /// Executes a batch of disjoint range queries, merging rows and stats.
    #[deprecated(note = "use Table::fetch_plan with FetchPlan::new")]
    pub fn fetch_batch(&self, regions: &[HyperRect]) -> FetchResult {
        self.fetch_plan(&FetchPlan::new(regions.to_vec()))
    }

    /// Executes a batch of disjoint range queries over up to `lanes`
    /// concurrent I/O streams.
    #[deprecated(note = "use Table::fetch_plan with FetchPlan::with_lanes")]
    pub fn fetch_batch_parallel(&self, regions: &[HyperRect], lanes: usize) -> FetchResult {
        self.fetch_plan(&FetchPlan::new(regions.to_vec()).with_lanes(lanes))
    }

    /// Executes the constraint range query `RQ(C)` of the naive approach.
    #[deprecated(note = "use Table::fetch_plan with FetchPlan::constrained")]
    pub fn fetch_constrained(&self, c: &Constraints) -> FetchResult {
        self.fetch_plan(&FetchPlan::constrained(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycache_geom::Interval;

    fn table() -> Table {
        // Grid of 100 2-D points: (i, j) for i, j in 0..10.
        let points: Vec<Point> = (0..10)
            .flat_map(|i| (0..10).map(move |j| Point::from(vec![i as f64, j as f64])))
            .collect();
        Table::build(points, TableConfig::default()).unwrap()
    }

    fn fetch_one(t: &Table, region: &HyperRect) -> FetchResult {
        t.fetch_plan(&FetchPlan::single(region.clone()))
    }

    fn fetch_c(t: &Table, c: &Constraints) -> FetchResult {
        t.fetch_plan(&FetchPlan::constrained(c))
    }

    #[test]
    fn build_validates() {
        assert_eq!(
            Table::build(vec![], TableConfig::default()).unwrap_err(),
            StorageError::EmptyTable
        );
        let bad = vec![Point::from(vec![1.0, 2.0]), Point::from(vec![1.0])];
        assert!(matches!(
            Table::build(bad, TableConfig::default()).unwrap_err(),
            StorageError::DimensionMismatch { expected: 2, actual: 1 }
        ));
        let cfg = TableConfig { page_capacity: 0, ..Default::default() };
        assert_eq!(
            Table::build(vec![Point::from(vec![0.0])], cfg).unwrap_err(),
            StorageError::InvalidPageCapacity
        );
    }

    #[test]
    fn fetch_constrained_matches_filter() {
        let t = table();
        let c = Constraints::from_pairs(&[(2.0, 4.0), (3.0, 5.0)]).unwrap();
        let res = fetch_c(&t, &c);
        assert_eq!(res.rows.len(), 9);
        assert!(res.rows.iter().all(|r| c.satisfies(&r.point)));
        assert_eq!(res.stats.rows_matched, 9);
        // Both dimensions are moderately selective (30 candidates each,
        // ~9 estimated matches): the planner picks a bitmap AND, so only
        // the matching rows hit the heap while both index ranges are
        // scanned as cheap index-only work.
        assert_eq!(res.stats.points_read, 9);
        assert_eq!(res.stats.heap_fetches, 9);
        assert_eq!(res.stats.index_entries_scanned, 60);
        assert_eq!(res.stats.range_queries_executed, 1);
        assert_eq!(res.stats.index_probes, 2);
    }

    #[test]
    fn picks_most_selective_dimension() {
        let t = table();
        // Dim 0 matches 10 keys, dim 1 matches 1 key → dim 1 chosen.
        let c = Constraints::from_pairs(&[(0.0, 9.0), (4.0, 4.0)]).unwrap();
        let res = fetch_c(&t, &c);
        assert_eq!(res.rows.len(), 10);
        // Dim 1 alone matches 10 rows; a bitmap AND with the unselective
        // dim 0 (all 100 rows) would cost more, so the planner stays with
        // the single-index scan: all 10 candidates hit the heap.
        assert_eq!(res.stats.points_read, 10);
        assert_eq!(res.stats.heap_fetches, 10);
        assert_eq!(res.stats.index_entries_scanned, 10);
    }

    #[test]
    fn empty_detection_skips_heap() {
        let t = table();
        let c = Constraints::from_pairs(&[(20.0, 30.0), (0.0, 9.0)]).unwrap();
        let res = fetch_c(&t, &c);
        assert!(res.rows.is_empty());
        assert_eq!(res.stats.range_queries_empty, 1);
        assert_eq!(res.stats.range_queries_executed, 0);
        assert_eq!(res.stats.points_read, 0);
    }

    #[test]
    fn degenerate_region_rejected_in_planning() {
        let t = table();
        let region = HyperRect::from_intervals(vec![
            Interval::new(3.0, 3.0, true, false), // empty interval
            Interval::closed(0.0, 9.0),
        ]);
        let res = fetch_one(&t, &region);
        assert!(res.rows.is_empty());
        assert_eq!(res.stats.range_queries_empty, 1);
        assert_eq!(res.stats.index_probes, 0);
    }

    #[test]
    fn half_open_region_excludes_boundary() {
        let t = table();
        let region = HyperRect::from_intervals(vec![
            Interval::new(2.0, 4.0, true, true), // only key 3
            Interval::closed(0.0, 9.0),
        ]);
        let res = fetch_one(&t, &region);
        assert_eq!(res.rows.len(), 10);
        assert!(res.rows.iter().all(|r| r.point[0] == 3.0));
    }

    #[test]
    fn unbounded_query_scans_heap() {
        let t = table();
        let c = Constraints::unbounded(2).unwrap();
        let res = fetch_c(&t, &c);
        assert_eq!(res.rows.len(), 100);
        assert_eq!(res.stats.points_read, 100);
        assert_eq!(res.stats.heap_fetches, 100);
    }

    #[test]
    fn batch_merges_stats() {
        let t = table();
        let r1 = Constraints::from_pairs(&[(0.0, 1.0), (0.0, 1.0)]).unwrap().region();
        let r2 = Constraints::from_pairs(&[(8.0, 9.0), (8.0, 9.0)]).unwrap().region();
        let res = t.fetch_plan(&FetchPlan::new(vec![r1, r2]));
        assert_eq!(res.rows.len(), 8);
        assert_eq!(res.stats.range_queries_issued, 2);
        assert_eq!(res.stats.range_queries_executed, 2);
        assert_eq!(res.stats.rows_matched, 8);
    }

    #[test]
    fn parallel_batch_matches_sequential_exactly() {
        let t = table();
        let regions: Vec<HyperRect> = [
            [(0.0, 2.0), (0.0, 2.0)],
            [(7.0, 9.0), (7.0, 9.0)],
            [(3.0, 4.0), (5.0, 6.0)],
            [(20.0, 30.0), (0.0, 9.0)], // empty
            [(5.0, 5.0), (0.0, 9.0)],
        ]
        .iter()
        .map(|pairs| Constraints::from_pairs(pairs).unwrap().region())
        .collect();
        let seq = t.fetch_plan(&FetchPlan::new(regions.clone()));
        for lanes in [1, 2, 3, 8] {
            let par = t.fetch_plan(&FetchPlan::new(regions.clone()).with_lanes(lanes));
            assert_eq!(par.rows, seq.rows, "{lanes} lanes: row mismatch");
            assert_eq!(par.stats, seq.stats, "{lanes} lanes: stats mismatch");
        }
    }

    #[test]
    fn parallel_batch_charges_slowest_lane() {
        let t = table();
        let regions: Vec<HyperRect> =
            [[(0.0, 2.0), (0.0, 2.0)], [(7.0, 9.0), (7.0, 9.0)], [(3.0, 4.0), (5.0, 6.0)]]
                .iter()
                .map(|pairs| Constraints::from_pairs(pairs).unwrap().region())
                .collect();
        let singles: Vec<Duration> =
            regions.iter().map(|r| fetch_one(&t, r).simulated_latency).collect();

        // 3 lanes, 3 regions: each lane runs one query, so the batch
        // costs exactly the most expensive single query.
        let par = t.fetch_plan(&FetchPlan::new(regions.clone()).with_lanes(3));
        assert_eq!(par.simulated_latency, singles.iter().copied().max().unwrap());
        assert!(
            par.simulated_latency
                < t.fetch_plan(&FetchPlan::new(regions.clone())).simulated_latency
        );

        // 2 lanes, round-robin: lane 0 gets regions 0 and 2, lane 1 gets
        // region 1.
        let par2 = t.fetch_plan(&FetchPlan::new(regions.clone()).with_lanes(2));
        assert_eq!(par2.simulated_latency, (singles[0] + singles[2]).max(singles[1]));

        // 1 lane degenerates to the sequential sum.
        let par1 = t.fetch_plan(&FetchPlan::new(regions.clone()).with_lanes(1));
        assert_eq!(
            par1.simulated_latency,
            t.fetch_plan(&FetchPlan::new(regions.clone())).simulated_latency
        );
    }

    #[test]
    fn lane_latencies_expose_per_lane_totals() {
        let t = table();
        let regions: Vec<HyperRect> =
            [[(0.0, 2.0), (0.0, 2.0)], [(7.0, 9.0), (7.0, 9.0)], [(3.0, 4.0), (5.0, 6.0)]]
                .iter()
                .map(|pairs| Constraints::from_pairs(pairs).unwrap().region())
                .collect();
        let singles: Vec<Duration> =
            regions.iter().map(|r| fetch_one(&t, r).simulated_latency).collect();

        // Round-robin: 3 lanes ↔ one region each; 2 lanes ↔ {0, 2} and {1}.
        let par3 = t.fetch_plan(&FetchPlan::new(regions.clone()).with_lanes(3));
        assert_eq!(par3.lane_latencies, singles);
        let par2 = t.fetch_plan(&FetchPlan::new(regions.clone()).with_lanes(2));
        assert_eq!(par2.lane_latencies, vec![singles[0] + singles[2], singles[1]]);
        // Sequential plans report no lanes, and absorb never merges them.
        let seq = t.fetch_plan(&FetchPlan::new(regions.clone()));
        assert!(seq.lane_latencies.is_empty());
        let mut folded = par3.clone();
        folded.absorb(seq);
        assert_eq!(folded.lane_latencies, singles);
    }

    #[test]
    fn record_into_publishes_canonical_metrics() {
        let t = table();
        let regions: Vec<HyperRect> = [
            [(0.0, 2.0), (0.0, 2.0)],
            [(7.0, 9.0), (7.0, 9.0)],
            [(20.0, 30.0), (0.0, 9.0)], // empty
        ]
        .iter()
        .map(|pairs| Constraints::from_pairs(pairs).unwrap().region())
        .collect();
        let res = t.fetch_plan(&FetchPlan::new(regions).with_lanes(3));

        let mut rec = skycache_obs::QueryRecorder::new();
        res.record_into(&mut rec);
        let report = rec.into_report();
        assert_eq!(report.counter(names::FETCH_REGIONS), res.stats.range_queries_issued);
        assert_eq!(report.counter(names::FETCH_RQ_EXECUTED), 2);
        assert_eq!(report.counter(names::FETCH_RQ_EMPTY), 1);
        assert_eq!(report.counter(names::FETCH_POINTS_READ), res.stats.points_read);
        assert_eq!(report.counter(names::FETCH_HEAP_FETCHES), res.stats.heap_fetches);
        assert_eq!(report.counter(names::FETCH_INDEX_PROBES), res.stats.index_probes);
        assert_eq!(report.gauge(names::LANES_FETCH), Some(3.0));
        assert!(report.gauge(names::LANES_FETCH_IMBALANCE).unwrap() >= 1.0);
        let lanes_hist = report.registry().histogram(names::LANES_FETCH_LATENCY_NS).unwrap();
        assert_eq!(lanes_hist.count(), 3);
        let fetch_hist = report.registry().histogram(names::FETCH_LATENCY_NS).unwrap();
        assert_eq!(fetch_hist.count(), 1);
        assert_eq!(fetch_hist.sum(), res.simulated_latency.as_nanos() as f64);
    }

    #[test]
    fn pages_touched_counts_distinct_pages() {
        let cfg = TableConfig { page_capacity: 10, ..Default::default() };
        let points: Vec<Point> = (0..10)
            .flat_map(|i| (0..10).map(move |j| Point::from(vec![i as f64, j as f64])))
            .collect();
        let t = Table::build(points, cfg).unwrap();
        // Rows 0..100 land on pages 0..10; one grid column i spans rows
        // 10i..10i+10, i.e. exactly one page.
        let c = Constraints::from_pairs(&[(3.0, 3.0), (0.0, 9.0)]).unwrap();
        let res = fetch_c(&t, &c);
        assert_eq!(t.pages_touched(&res.rows), 1);
        let all = fetch_c(&t, &Constraints::unbounded(2).unwrap());
        assert_eq!(t.pages_touched(&all.rows), 10);
        assert_eq!(t.pages_touched(&[]), 0);
    }

    #[test]
    fn fetch_plan_builders() {
        let c = Constraints::from_pairs(&[(1.0, 2.0), (1.0, 2.0)]).unwrap();
        let plan = FetchPlan::constrained(&c);
        assert_eq!(plan.regions, vec![c.region()]);
        assert_eq!(plan.lanes, 1);
        assert_eq!(plan.resolved_lanes(), 1);
        // Lanes clamp to the region count (and to 1 from below).
        assert_eq!(FetchPlan::single(c.region()).with_lanes(16).resolved_lanes(), 1);
        assert_eq!(FetchPlan::new(vec![]).with_lanes(4).resolved_lanes(), 1);
        let two = FetchPlan::new(vec![c.region(), c.region()]).with_lanes(0);
        assert_eq!(two.resolved_lanes(), 1);
        assert_eq!(two.with_lanes(8).resolved_lanes(), 2);
    }

    /// The deprecated entry points must stay behaviourally identical to
    /// the [`FetchPlan`] they delegate to until they are removed.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_fetch_plan() {
        let t = table();
        let c = Constraints::from_pairs(&[(2.0, 4.0), (3.0, 5.0)]).unwrap();
        let r = c.region();
        assert_eq!(t.fetch(&r).stats, fetch_one(&t, &r).stats);
        assert_eq!(t.fetch_constrained(&c).rows, fetch_c(&t, &c).rows);
        let regions = vec![r.clone(), Constraints::unbounded(2).unwrap().region()];
        assert_eq!(
            t.fetch_batch(&regions).stats,
            t.fetch_plan(&FetchPlan::new(regions.clone())).stats
        );
        let par = t.fetch_batch_parallel(&regions, 2);
        let planned = t.fetch_plan(&FetchPlan::new(regions).with_lanes(2));
        assert_eq!(par.stats, planned.stats);
        assert_eq!(par.lane_latencies, planned.lane_latencies);
    }

    #[test]
    fn parallel_batch_handles_degenerate_inputs() {
        let t = table();
        // Empty region list.
        let none = t.fetch_plan(&FetchPlan::new(vec![]).with_lanes(4));
        assert!(none.rows.is_empty());
        assert_eq!(none.stats, FetchStats::default());
        // More lanes than regions is clamped.
        let r = Constraints::from_pairs(&[(1.0, 2.0), (1.0, 2.0)]).unwrap().region();
        let one = t.fetch_plan(&FetchPlan::single(r.clone()).with_lanes(16));
        assert_eq!(one.rows, fetch_one(&t, &r).rows);
        // Zero lanes behaves as one.
        let zero = t.fetch_plan(&FetchPlan::single(r.clone()).with_lanes(0));
        assert_eq!(zero.stats, one.stats);
    }

    #[test]
    fn simulated_latency_uses_cost_model() {
        let t = table();
        let c = Constraints::from_pairs(&[(2.0, 4.0), (3.0, 5.0)]).unwrap();
        let res = fetch_c(&t, &c);
        let expect = t.config().cost_model.fetch_latency(&res.stats);
        assert_eq!(res.simulated_latency, expect);
        assert!(res.simulated_latency > Duration::ZERO);
    }

    #[test]
    fn insert_is_queryable_immediately() {
        let mut t = table();
        let row = t.insert(Point::from(vec![3.5, 3.5])).unwrap();
        assert_eq!(t.len(), 101);
        assert!(t.is_live(row));
        let c = Constraints::from_pairs(&[(3.2, 3.8), (3.2, 3.8)]).unwrap();
        let res = fetch_c(&t, &c);
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.rows[0].id, row);
        // Dimensionality is validated.
        assert!(t.insert(Point::from(vec![1.0])).is_err());
    }

    #[test]
    fn delete_removes_from_all_plans() {
        let mut t = table();
        // Row for point (4, 4) in the grid: row = 4*10 + 4.
        let deleted = t.delete(44).unwrap();
        assert_eq!(deleted, Point::from(vec![4.0, 4.0]));
        assert_eq!(t.len(), 99);
        assert!(!t.is_live(44));
        assert!(t.delete(44).is_none(), "double delete is a no-op");

        // Single-index and bitmap plans no longer see it.
        let c = Constraints::from_pairs(&[(4.0, 4.0), (4.0, 4.0)]).unwrap();
        assert!(fetch_c(&t, &c).rows.is_empty());
        // Sequential scan path skips it too.
        let all = fetch_c(&t, &Constraints::unbounded(2).unwrap());
        assert_eq!(all.rows.len(), 99);
        assert!(all.rows.iter().all(|r| r.id != 44));
        // live_points agrees.
        assert_eq!(t.live_points().count(), 99);
    }

    #[test]
    fn mutated_table_matches_rebuilt_table() {
        let mut t = table();
        t.delete(17).unwrap();
        t.delete(83).unwrap();
        let added = Point::from(vec![2.5, 7.5]);
        t.insert(added.clone()).unwrap();

        // Rebuild from the live set and compare query results.
        let live: Vec<Point> = t.live_points().map(|(_, p)| p.clone()).collect();
        let rebuilt = Table::build(live, TableConfig::default()).unwrap();
        for c in [
            Constraints::from_pairs(&[(0.0, 9.0), (0.0, 9.0)]).unwrap(),
            Constraints::from_pairs(&[(1.0, 3.0), (6.0, 8.0)]).unwrap(),
            Constraints::from_pairs(&[(2.5, 2.5), (7.5, 7.5)]).unwrap(),
        ] {
            let mut a: Vec<Point> = fetch_c(&t, &c).rows.into_iter().map(|r| r.point).collect();
            let mut b: Vec<Point> =
                fetch_c(&rebuilt, &c).rows.into_iter().map(|r| r.point).collect();
            let key = |p: &Point| (p[0].to_bits(), p[1].to_bits());
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b, "constraints {c:?}");
        }
    }

    /// Three regions whose dim-0 index ranges overlap pairwise must merge
    /// into one range query under coalescing, with the duplicate rows of
    /// the overlaps emitted exactly once.
    #[test]
    fn coalescing_merges_overlapping_index_ranges() {
        let t = table();
        // Dim-0 candidate position ranges: 0..30, 20..50, 30..60 (each
        // grid column holds 10 rows). Dim 1 is unbounded so dim 0 is the
        // chosen dimension for all three.
        let regions: Vec<HyperRect> =
            [[(0.0, 2.0), (0.0, 9.0)], [(2.0, 4.0), (0.0, 9.0)], [(3.0, 5.0), (0.0, 9.0)]]
                .iter()
                .map(|pairs| Constraints::from_pairs(pairs).unwrap().region())
                .collect();

        let naive = t.fetch_plan(&FetchPlan::new(regions.clone()));
        // Columns 2 and 3,4,5 are double-counted by the overlaps.
        assert_eq!(naive.rows.len(), 90);
        assert_eq!(naive.stats.range_queries_executed, 3);
        assert_eq!(naive.stats.regions_coalesced, 0);

        let co = t.fetch_plan(&FetchPlan::new(regions).coalesced());
        assert_eq!(co.rows.len(), 60, "each of columns 0..=5 exactly once");
        assert_eq!(co.stats.range_queries_issued, 3);
        assert_eq!(co.stats.range_queries_executed, 1, "one merged range query");
        assert_eq!(co.stats.regions_coalesced, 2);
        assert_eq!(co.stats.heap_fetches, 60, "merged slice scanned once");
        assert_eq!(co.stats.points_read, 60);

        // Same deduped row set as the naive plan.
        let mut naive_ids: Vec<RowId> = naive.rows.iter().map(|r| r.id).collect();
        naive_ids.sort_unstable();
        naive_ids.dedup();
        let mut co_ids: Vec<RowId> = co.rows.iter().map(|r| r.id).collect();
        co_ids.sort_unstable();
        assert_eq!(co_ids, naive_ids);
    }

    /// Abutting (non-overlapping) index ranges coalesce too; disjoint
    /// ranges with a gap stay separate range queries.
    #[test]
    fn coalescing_handles_abutting_and_disjoint_ranges() {
        let t = table();
        let abutting: Vec<HyperRect> = [[(0.0, 1.0), (0.0, 9.0)], [(2.0, 3.0), (0.0, 9.0)]]
            .iter()
            .map(|pairs| Constraints::from_pairs(pairs).unwrap().region())
            .collect();
        let res = t.fetch_plan(&FetchPlan::new(abutting).coalesced());
        // Positions 0..20 and 20..40 abut → one merged query.
        assert_eq!(res.stats.range_queries_executed, 1);
        assert_eq!(res.stats.regions_coalesced, 1);
        assert_eq!(res.rows.len(), 40);

        let disjoint: Vec<HyperRect> = [[(0.0, 1.0), (0.0, 9.0)], [(5.0, 6.0), (0.0, 9.0)]]
            .iter()
            .map(|pairs| Constraints::from_pairs(pairs).unwrap().region())
            .collect();
        let res = t.fetch_plan(&FetchPlan::new(disjoint).coalesced());
        // Positions 0..20 and 50..70 leave a gap → two queries, no saving.
        assert_eq!(res.stats.range_queries_executed, 2);
        assert_eq!(res.stats.regions_coalesced, 0);
        assert_eq!(res.rows.len(), 40);
    }

    /// A coalesced plan executes on at most as many lanes as it has
    /// units: merging three regions into one unit makes the fetch
    /// sequential no matter how many lanes the plan requested.
    #[test]
    fn lanes_clamp_to_executable_units() {
        let t = table();
        let merged: Vec<HyperRect> =
            [[(0.0, 2.0), (0.0, 9.0)], [(2.0, 4.0), (0.0, 9.0)], [(3.0, 5.0), (0.0, 9.0)]]
                .iter()
                .map(|pairs| Constraints::from_pairs(pairs).unwrap().region())
                .collect();
        let res = t.fetch_plan(&FetchPlan::new(merged).coalesced().with_lanes(3));
        assert!(res.lane_latencies.is_empty(), "single merged unit runs sequentially");
        assert!(res.simulated_latency > Duration::ZERO);

        let two_units: Vec<HyperRect> = [[(0.0, 1.0), (0.0, 9.0)], [(5.0, 6.0), (0.0, 9.0)]]
            .iter()
            .map(|pairs| Constraints::from_pairs(pairs).unwrap().region())
            .collect();
        let res = t.fetch_plan(&FetchPlan::new(two_units).coalesced().with_lanes(8));
        assert_eq!(res.lane_latencies.len(), 2, "lanes clamp to the two units");
        assert!(res.lane_latencies.iter().all(|&d| d > Duration::ZERO));
    }

    /// Coalesced plans are lane-invariant: rows (order included) and all
    /// counters match the sequential execution for any lane count.
    #[test]
    fn coalesced_plan_matches_across_lane_counts() {
        let t = table();
        let regions: Vec<HyperRect> = [
            [(0.0, 2.0), (0.0, 9.0)],
            [(2.0, 4.0), (0.0, 9.0)],   // overlaps the first
            [(20.0, 30.0), (0.0, 9.0)], // empty
            [(7.0, 9.0), (0.0, 9.0)],
            [(3.0, 4.0), (5.0, 6.0)], // bitmap-eligible, overlaps second
        ]
        .iter()
        .map(|pairs| Constraints::from_pairs(pairs).unwrap().region())
        .collect();
        let seq = t.fetch_plan(&FetchPlan::new(regions.clone()).coalesced());
        assert!(seq.stats.regions_coalesced > 0, "plan must actually coalesce");
        for lanes in [2, 3, 8] {
            let par = t.fetch_plan(&FetchPlan::new(regions.clone()).coalesced().with_lanes(lanes));
            assert_eq!(par.rows, seq.rows, "{lanes} lanes: row mismatch");
            assert_eq!(par.stats, seq.stats, "{lanes} lanes: stats mismatch");
        }
    }

    /// The zero-copy entry point leaves the rows in the caller's scratch;
    /// materializing them via fetch_with yields the same result.
    #[test]
    fn fetch_plan_into_matches_fetch_with() {
        let t = table();
        let plan = FetchPlan::new(vec![
            Constraints::from_pairs(&[(2.0, 4.0), (3.0, 5.0)]).unwrap().region(),
            Constraints::from_pairs(&[(0.0, 1.0), (0.0, 1.0)]).unwrap().region(),
        ]);
        let mut scratch = FetchScratch::new();
        let outcome = t.fetch_plan_into(&plan, &mut scratch);
        let expect = t.fetch_plan(&plan);
        assert_eq!(outcome.stats, expect.stats);
        assert_eq!(outcome.simulated_latency, expect.simulated_latency);
        let buf = scratch.rows();
        assert_eq!(buf.len(), expect.rows.len());
        for (i, row) in expect.rows.iter().enumerate() {
            assert_eq!(buf.ids()[i], row.id);
            assert_eq!(buf.row(i), row.point.coords());
        }
        // The scratch is reusable: a second fetch overwrites the first.
        let single = FetchPlan::single(Constraints::unbounded(2).unwrap().region());
        t.fetch_plan_into(&single, &mut scratch);
        assert_eq!(scratch.rows().len(), 100);
    }

    #[test]
    fn page_accounting() {
        let cfg = TableConfig { page_capacity: 7, ..Default::default() };
        let t = Table::build((0..20).map(|i| Point::from(vec![i as f64])).collect(), cfg).unwrap();
        assert_eq!(t.page_of(0), 0);
        assert_eq!(t.page_of(6), 0);
        assert_eq!(t.page_of(7), 1);
        assert_eq!(t.page_of(19), 2);
    }
}
