use std::time::Duration;

use skycache_geom::{Constraints, HyperRect, Point};
use skycache_obs::{names, Recorder};

use crate::cost::{CostModel, FetchStats};
use crate::error::StorageError;
use crate::index::ColumnIndex;
use crate::Result;

/// Identifier of a stored row.
pub type RowId = u32;

/// A fetched row: its id plus a copy of the stored point.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Stable row identifier.
    pub id: RowId,
    /// The point's coordinates.
    pub point: Point,
}

/// Table construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct TableConfig {
    /// Points per heap page (affects page accounting only).
    pub page_capacity: usize,
    /// I/O latency model used to simulate fetch times.
    pub cost_model: CostModel,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig { page_capacity: 128, cost_model: CostModel::default() }
    }
}

/// Declarative description of one storage access: which regions to
/// range-query and how many concurrent I/O lanes to use.
///
/// This replaces the old quartet of `fetch` / `fetch_batch` /
/// `fetch_batch_parallel` / `fetch_constrained` entry points: callers
/// build a plan and hand it to [`Table::fetch_plan`].
#[derive(Clone, Debug, PartialEq)]
pub struct FetchPlan {
    /// Regions to fetch, one simulated range query each.
    pub regions: Vec<HyperRect>,
    /// Concurrent I/O lanes; clamped to `1..=regions.len()` at execution
    /// time, so `1` (the default) is fully sequential.
    pub lanes: usize,
}

impl FetchPlan {
    /// A sequential plan over `regions`.
    pub fn new(regions: Vec<HyperRect>) -> Self {
        FetchPlan { regions, lanes: 1 }
    }

    /// A plan fetching a single region.
    pub fn single(region: HyperRect) -> Self {
        FetchPlan::new(vec![region])
    }

    /// The naive approach's constraint range query `RQ(C)`.
    pub fn constrained(c: &Constraints) -> Self {
        FetchPlan::single(c.region())
    }

    /// Sets the lane count (builder style).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// The lane count [`Table::fetch_plan`] will actually use.
    pub fn resolved_lanes(&self) -> usize {
        self.lanes.clamp(1, self.regions.len().max(1))
    }
}

/// Result of executing a [`FetchPlan`].
#[derive(Clone, Debug, Default)]
pub struct FetchResult {
    /// Rows satisfying the query region(s).
    pub rows: Vec<Row>,
    /// I/O counters for the fetch.
    pub stats: FetchStats,
    /// Simulated latency under the table's [`CostModel`].
    pub simulated_latency: Duration,
    /// Per-lane simulated latency totals when the plan ran on more than
    /// one lane; empty for sequential plans. Left untouched by
    /// [`FetchResult::absorb`] (lane accounting does not compose across
    /// separate fetches).
    pub lane_latencies: Vec<Duration>,
}

impl FetchResult {
    /// Folds another fetch into this one (rows, counters and latency;
    /// `lane_latencies` is deliberately not merged).
    pub fn absorb(&mut self, other: FetchResult) {
        self.rows.extend(other.rows); // skylint: allow(hot-path-alloc) — folds owned result rows, once per region
        self.stats.merge(&other.stats);
        self.simulated_latency += other.simulated_latency;
    }

    /// Publishes this result into a [`Recorder`] under the canonical
    /// `fetch.*` / `lanes.*` metric names — the single place the storage
    /// layer talks to observability, so call sites no longer hand-sum
    /// [`FetchStats`] fields. Heap-page accounting is derived separately
    /// (see [`Table::pages_touched`]) because it needs the table's page
    /// geometry.
    pub fn record_into(&self, rec: &mut dyn Recorder) {
        rec.add_counter(names::FETCH_REGIONS, self.stats.range_queries_issued);
        rec.add_counter(names::FETCH_RQ_EXECUTED, self.stats.range_queries_executed);
        rec.add_counter(names::FETCH_RQ_EMPTY, self.stats.range_queries_empty);
        rec.add_counter(names::FETCH_POINTS_READ, self.stats.points_read);
        rec.add_counter(names::FETCH_HEAP_FETCHES, self.stats.heap_fetches);
        rec.add_counter(names::FETCH_ROWS_MATCHED, self.stats.rows_matched);
        rec.add_counter(names::FETCH_INDEX_PROBES, self.stats.index_probes);
        rec.add_counter(names::FETCH_INDEX_ENTRIES, self.stats.index_entries_scanned);
        rec.observe_value(names::FETCH_LATENCY_NS, self.simulated_latency.as_nanos() as f64);
        if !self.lane_latencies.is_empty() {
            let lanes = self.lane_latencies.len() as f64;
            let mut sum = 0.0;
            let mut slowest = 0.0f64;
            for lane in &self.lane_latencies {
                let ns = lane.as_nanos() as f64;
                rec.observe_value(names::LANES_FETCH_LATENCY_NS, ns);
                sum += ns;
                slowest = slowest.max(ns);
            }
            rec.set_gauge(names::LANES_FETCH, lanes);
            let imbalance = if sum > 0.0 { slowest / (sum / lanes) } else { 1.0 };
            rec.set_gauge(names::LANES_FETCH_IMBALANCE, imbalance);
        }
    }
}

/// A read-only table of points: paged heap plus one [`ColumnIndex`] per
/// dimension (the paper's "PostgreSQL with each dimension indexed by a
/// standard B-tree").
#[derive(Clone, Debug)]
pub struct Table {
    points: Vec<Point>,
    /// Liveness per heap slot; deletions tombstone instead of compacting
    /// so row ids stay stable (index entries of dead rows are removed, so
    /// index-driven plans never see them).
    live: Vec<bool>,
    live_count: usize,
    indexes: Vec<ColumnIndex>,
    dims: usize,
    config: TableConfig,
}

impl Table {
    /// Builds a table (heap + all indexes) from a non-empty point set.
    pub fn build(points: Vec<Point>, config: TableConfig) -> Result<Self> {
        if config.page_capacity == 0 {
            return Err(StorageError::InvalidPageCapacity);
        }
        let dims = points.first().ok_or(StorageError::EmptyTable)?.dims();
        if let Some(bad) = points.iter().find(|p| p.dims() != dims) {
            return Err(StorageError::DimensionMismatch { expected: dims, actual: bad.dims() });
        }
        if points.len() > RowId::MAX as usize {
            return Err(StorageError::InvalidPageCapacity);
        }
        let indexes = (0..dims).map(|d| ColumnIndex::build(&points, d)).collect();
        let live = vec![true; points.len()];
        let live_count = points.len();
        Ok(Table { points, live, live_count, indexes, dims, config })
    }

    /// Reconstructs a table from persisted parts (heap slots plus a
    /// liveness bitmap), rebuilding the per-dimension indexes over the
    /// live rows only.
    pub(crate) fn from_parts(
        points: Vec<Point>,
        live: Vec<bool>,
        config: TableConfig,
    ) -> Result<Self> {
        if config.page_capacity == 0 {
            return Err(StorageError::InvalidPageCapacity);
        }
        if points.len() != live.len() {
            return Err(StorageError::Corrupt("liveness bitmap length mismatch".into()));
        }
        let dims = points.first().ok_or(StorageError::EmptyTable)?.dims();
        if let Some(bad) = points.iter().find(|p| p.dims() != dims) {
            return Err(StorageError::DimensionMismatch { expected: dims, actual: bad.dims() });
        }
        let live_count = live.iter().filter(|&&l| l).count();
        let mut indexes: Vec<ColumnIndex> = Vec::with_capacity(dims);
        for d in 0..dims {
            let mut index = ColumnIndex::build(&[], d);
            let mut pairs: Vec<(f64, RowId)> = points
                .iter()
                .enumerate()
                .filter(|&(row, _)| live[row])
                .map(|(row, p)| (p[d], row as RowId))
                .collect();
            pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            for (key, row) in pairs {
                index.push_sorted(key, row);
            }
            indexes.push(index);
        }
        Ok(Table { points, live, live_count, indexes, dims, config })
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Number of heap slots, including tombstoned rows.
    pub fn slot_count(&self) -> usize {
        self.points.len()
    }

    /// Whether the table holds no live points.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Dimensionality of stored points.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The table's configuration.
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    /// Direct access to a stored point (no I/O accounting; for index
    /// construction and tests).
    pub fn point(&self, row: RowId) -> &Point {
        &self.points[row as usize]
    }

    /// All heap slots in row order, *including logically deleted rows*
    /// (no I/O accounting). Correct for tables that have not been mutated;
    /// prefer [`Table::live_points`] after deletions.
    pub fn all_points(&self) -> &[Point] {
        &self.points
    }

    /// Live `(row, point)` pairs in row order (no I/O accounting; used to
    /// bulk-load secondary structures such as the BBS R-tree).
    pub fn live_points(&self) -> impl Iterator<Item = (RowId, &Point)> {
        self.points
            .iter()
            .enumerate()
            .filter(|&(row, _)| self.live[row])
            .map(|(row, p)| (row as RowId, p))
    }

    /// Whether a row is live.
    pub fn is_live(&self, row: RowId) -> bool {
        self.live.get(row as usize).copied().unwrap_or(false)
    }

    /// Appends a point (the dynamic-data extension, paper Section 6.2),
    /// maintaining every per-dimension index. Returns the new row id.
    pub fn insert(&mut self, point: Point) -> Result<RowId> {
        if point.dims() != self.dims {
            return Err(StorageError::DimensionMismatch {
                expected: self.dims,
                actual: point.dims(),
            });
        }
        if self.points.len() >= RowId::MAX as usize {
            return Err(StorageError::InvalidPageCapacity);
        }
        let row = self.points.len() as RowId;
        for (dim, index) in self.indexes.iter_mut().enumerate() {
            index.insert(point[dim], row);
        }
        // skylint: allow(hot-path-alloc) — Table::insert is the dynamic-data mutation path; the fetch kernels never reach it (the lint chain is a name collision with Registry::insert).
        self.points.push(point);
        // skylint: allow(hot-path-alloc) — same: mutation path, not fetch-reachable.
        self.live.push(true);
        self.live_count += 1;
        Ok(row)
    }

    /// Deletes a row (tombstoning its heap slot and removing its index
    /// entries). Returns the deleted point, or `None` if the row does not
    /// exist or was already deleted.
    pub fn delete(&mut self, row: RowId) -> Option<Point> {
        let idx = row as usize;
        if !self.live.get(idx).copied().unwrap_or(false) {
            return None;
        }
        self.live[idx] = false;
        self.live_count -= 1;
        let point = self.points[idx].clone();
        for (dim, index) in self.indexes.iter_mut().enumerate() {
            let removed = index.remove(point[dim], row);
            debug_assert!(removed, "index out of sync with heap");
        }
        Some(point)
    }

    /// Heap page of a row.
    pub fn page_of(&self, row: RowId) -> usize {
        row as usize / self.config.page_capacity
    }

    /// Executes a [`FetchPlan`] — the table's single fetch entry point.
    ///
    /// Every region runs as one range query; rows and every
    /// [`FetchStats`] counter are **identical** regardless of the lane
    /// count, because results merge in region order and the counters
    /// describe work done, which parallelism does not change. Only the
    /// latency accounting differs: with one lane `simulated_latency` is
    /// the sum over regions; with `n > 1` lanes the regions are dealt
    /// round-robin onto `n` scoped threads, each lane's queries run
    /// sequentially within the lane, the plan is charged the slowest
    /// lane via [`CostModel::critical_path_latency`], and the per-lane
    /// totals are exposed in [`FetchResult::lane_latencies`].
    pub fn fetch_plan(&self, plan: &FetchPlan) -> FetchResult {
        let lanes = plan.resolved_lanes();
        if lanes <= 1 {
            let mut out = FetchResult::default();
            for region in &plan.regions {
                out.absorb(self.fetch_region(region));
            }
            return out;
        }
        self.fetch_lanes(&plan.regions, lanes)
    }

    /// Executes one range query over a (possibly half-open) region.
    ///
    /// Planning mirrors a DBMS with one B-tree per dimension:
    ///
    /// 1. probe every finitely-bounded dimension's index; if any
    ///    projection is empty, answer from the index alone ("the B-trees
    ///    detect the empty queries", paper Section 7.3.2);
    /// 2. otherwise choose between a **single-index scan** (fetch the most
    ///    selective dimension's candidates from the heap, post-filter the
    ///    rest — heap cost: that dimension's candidate count) and a
    ///    **bitmap AND scan** (intersect the per-dimension row sets in the
    ///    indexes, fetch only the intersection — heap cost ≈ the matching
    ///    rows, plus cheap per-entry index work), using the standard
    ///    selectivity-product estimate.
    fn fetch_region(&self, region: &HyperRect) -> FetchResult {
        assert_eq!(region.dims(), self.dims, "query/table dimensionality mismatch");
        let mut stats = FetchStats { range_queries_issued: 1, ..Default::default() };

        if region.is_empty() {
            // Degenerate regions are rejected during planning, before any
            // index work.
            stats.range_queries_empty = 1;
            let simulated_latency = self.config.cost_model.fetch_latency(&stats);
            return FetchResult { stats, simulated_latency, ..FetchResult::default() };
        }

        // Probe indexes.
        // skylint: allow(hot-path-alloc) — one slot per constrained dimension (≤ dims)
        let mut probed: Vec<(usize, usize)> = Vec::new(); // (dim, count)
        let mut empty = false;
        for (dim, iv) in region.intervals().iter().enumerate() {
            let unbounded = iv.lo() == f64::NEG_INFINITY && iv.hi() == f64::INFINITY;
            if unbounded {
                continue; // no predicate on this dimension
            }
            stats.index_probes += 1;
            let count = self.indexes[dim].count_in(iv);
            if count == 0 {
                empty = true;
                break;
            }
            probed.push((dim, count)); // skylint: allow(hot-path-alloc) — bounded by dims
        }

        if empty {
            stats.range_queries_empty = 1;
            let simulated_latency = self.config.cost_model.fetch_latency(&stats);
            return FetchResult { stats, simulated_latency, ..FetchResult::default() };
        }

        stats.range_queries_executed = 1;
        let rows: Vec<Row> = match probed.iter().min_by_key(|&&(_, c)| c).copied() {
            None => {
                // Fully unbounded query: sequential scan of the heap
                // (dead slots are still paged in, hence still charged).
                stats.heap_fetches = self.points.len() as u64;
                self.points
                    .iter()
                    .enumerate()
                    .filter(|&(row, _)| self.live[row])
                    // skylint: allow(hot-path-alloc) — FetchResult's owned-row contract
                    .map(|(row, point)| Row { id: row as RowId, point: point.clone() })
                    // skylint: allow(hot-path-alloc) — sequential-scan result assembly
                    .collect()
            }
            Some((best_dim, best_count)) => {
                // Plan choice: single-index heap cost vs bitmap estimate.
                let n = self.points.len() as f64;
                let est_match: f64 = probed.iter().fold(n, |acc, &(_, c)| acc * (c as f64 / n));
                let entries: usize = probed.iter().map(|&(_, c)| c).sum();
                let ratio = self.config.cost_model.entry_to_point_ratio();
                let bitmap_cost = est_match + ratio * entries as f64;
                let use_bitmap = probed.len() > 1 && bitmap_cost < best_count as f64;

                // Either way the candidates of the most selective
                // dimension are scanned and filtered; the plans differ in
                // what touches the *heap*, i.e. in the accounting.
                let rows: Vec<Row> = self.indexes[best_dim]
                    .rows_in(region.interval(best_dim))
                    .iter()
                    .filter_map(|&row| {
                        let point = &self.points[row as usize];
                        // skylint: allow(hot-path-alloc) — FetchResult's owned-row contract
                        region.contains_point(point).then(|| Row { id: row, point: point.clone() })
                    })
                    // skylint: allow(hot-path-alloc) — candidate rows of the chosen plan
                    .collect();
                if use_bitmap {
                    // Bitmap AND: every constrained index range is scanned
                    // (cheap, index-only); only intersecting rows hit the
                    // heap.
                    stats.index_entries_scanned = entries as u64;
                    stats.heap_fetches = rows.len() as u64;
                } else {
                    // Single-index scan: every candidate tuple of the most
                    // selective dimension is fetched and post-filtered.
                    stats.index_entries_scanned = best_count as u64;
                    stats.heap_fetches = best_count as u64;
                }
                rows
            }
        };
        stats.rows_matched = rows.len() as u64;
        stats.points_read = stats.rows_matched;
        let simulated_latency = self.config.cost_model.fetch_latency(&stats);
        FetchResult { rows, stats, simulated_latency, ..FetchResult::default() }
    }

    /// The multi-lane arm of [`Table::fetch_plan`]: regions dealt
    /// round-robin onto `lanes` scoped threads, merged in region order.
    fn fetch_lanes(&self, regions: &[HyperRect], lanes: usize) -> FetchResult {
        // skylint: allow(hot-path-alloc) — one staging slot per region / per lane
        let mut per_region: Vec<Option<FetchResult>> = vec![None; regions.len()];
        let mut lane_totals = vec![Duration::ZERO; lanes]; // skylint: allow(hot-path-alloc) — one slot per lane
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..lanes)
                .map(|lane| {
                    s.spawn(move || {
                        let mut fetched = Vec::new(); // skylint: allow(hot-path-alloc) — per-lane result staging
                        let mut total = Duration::ZERO;
                        for (idx, region) in regions.iter().enumerate().skip(lane).step_by(lanes) {
                            let result = self.fetch_region(region);
                            total += result.simulated_latency;
                            fetched.push((idx, result)); // skylint: allow(hot-path-alloc) — one entry per region
                        }
                        (fetched, total)
                    })
                })
                // skylint: allow(hot-path-alloc) — one spawn handle per lane
                .collect();
            for (lane, handle) in handles.into_iter().enumerate() {
                // skylint: allow(no-panic-paths) — join() only fails on a lane panic.
                let (fetched, total) = handle.join().expect("fetch lane panicked");
                lane_totals[lane] = total;
                for (idx, result) in fetched {
                    per_region[idx] = Some(result);
                }
            }
        });

        let mut out = FetchResult::default();
        for result in per_region {
            // skylint: allow(no-panic-paths) — lane spans cover all region indexes.
            out.absorb(result.expect("every region fetched by its lane"));
        }
        out.simulated_latency = self.config.cost_model.critical_path_latency(&lane_totals);
        out.lane_latencies = lane_totals;
        out
    }

    /// Distinct heap pages touched by a set of fetched rows (the derived
    /// `fetch.pages_touched` metric; needs the table's page geometry, so
    /// it lives here rather than on [`FetchResult`]).
    pub fn pages_touched(&self, rows: &[Row]) -> u64 {
        let mut pages = std::collections::BTreeSet::new();
        for row in rows {
            pages.insert(self.page_of(row.id));
        }
        pages.len() as u64
    }

    /// Executes one range query over a (possibly half-open) region.
    #[deprecated(note = "use Table::fetch_plan with FetchPlan::single")]
    pub fn fetch(&self, region: &HyperRect) -> FetchResult {
        self.fetch_plan(&FetchPlan::single(region.clone()))
    }

    /// Executes a batch of disjoint range queries, merging rows and stats.
    #[deprecated(note = "use Table::fetch_plan with FetchPlan::new")]
    pub fn fetch_batch(&self, regions: &[HyperRect]) -> FetchResult {
        self.fetch_plan(&FetchPlan::new(regions.to_vec()))
    }

    /// Executes a batch of disjoint range queries over up to `lanes`
    /// concurrent I/O streams.
    #[deprecated(note = "use Table::fetch_plan with FetchPlan::with_lanes")]
    pub fn fetch_batch_parallel(&self, regions: &[HyperRect], lanes: usize) -> FetchResult {
        self.fetch_plan(&FetchPlan::new(regions.to_vec()).with_lanes(lanes))
    }

    /// Executes the constraint range query `RQ(C)` of the naive approach.
    #[deprecated(note = "use Table::fetch_plan with FetchPlan::constrained")]
    pub fn fetch_constrained(&self, c: &Constraints) -> FetchResult {
        self.fetch_plan(&FetchPlan::constrained(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycache_geom::Interval;

    fn table() -> Table {
        // Grid of 100 2-D points: (i, j) for i, j in 0..10.
        let points: Vec<Point> = (0..10)
            .flat_map(|i| (0..10).map(move |j| Point::from(vec![i as f64, j as f64])))
            .collect();
        Table::build(points, TableConfig::default()).unwrap()
    }

    fn fetch_one(t: &Table, region: &HyperRect) -> FetchResult {
        t.fetch_plan(&FetchPlan::single(region.clone()))
    }

    fn fetch_c(t: &Table, c: &Constraints) -> FetchResult {
        t.fetch_plan(&FetchPlan::constrained(c))
    }

    #[test]
    fn build_validates() {
        assert_eq!(
            Table::build(vec![], TableConfig::default()).unwrap_err(),
            StorageError::EmptyTable
        );
        let bad = vec![Point::from(vec![1.0, 2.0]), Point::from(vec![1.0])];
        assert!(matches!(
            Table::build(bad, TableConfig::default()).unwrap_err(),
            StorageError::DimensionMismatch { expected: 2, actual: 1 }
        ));
        let cfg = TableConfig { page_capacity: 0, ..Default::default() };
        assert_eq!(
            Table::build(vec![Point::from(vec![0.0])], cfg).unwrap_err(),
            StorageError::InvalidPageCapacity
        );
    }

    #[test]
    fn fetch_constrained_matches_filter() {
        let t = table();
        let c = Constraints::from_pairs(&[(2.0, 4.0), (3.0, 5.0)]).unwrap();
        let res = fetch_c(&t, &c);
        assert_eq!(res.rows.len(), 9);
        assert!(res.rows.iter().all(|r| c.satisfies(&r.point)));
        assert_eq!(res.stats.rows_matched, 9);
        // Both dimensions are moderately selective (30 candidates each,
        // ~9 estimated matches): the planner picks a bitmap AND, so only
        // the matching rows hit the heap while both index ranges are
        // scanned as cheap index-only work.
        assert_eq!(res.stats.points_read, 9);
        assert_eq!(res.stats.heap_fetches, 9);
        assert_eq!(res.stats.index_entries_scanned, 60);
        assert_eq!(res.stats.range_queries_executed, 1);
        assert_eq!(res.stats.index_probes, 2);
    }

    #[test]
    fn picks_most_selective_dimension() {
        let t = table();
        // Dim 0 matches 10 keys, dim 1 matches 1 key → dim 1 chosen.
        let c = Constraints::from_pairs(&[(0.0, 9.0), (4.0, 4.0)]).unwrap();
        let res = fetch_c(&t, &c);
        assert_eq!(res.rows.len(), 10);
        // Dim 1 alone matches 10 rows; a bitmap AND with the unselective
        // dim 0 (all 100 rows) would cost more, so the planner stays with
        // the single-index scan: all 10 candidates hit the heap.
        assert_eq!(res.stats.points_read, 10);
        assert_eq!(res.stats.heap_fetches, 10);
        assert_eq!(res.stats.index_entries_scanned, 10);
    }

    #[test]
    fn empty_detection_skips_heap() {
        let t = table();
        let c = Constraints::from_pairs(&[(20.0, 30.0), (0.0, 9.0)]).unwrap();
        let res = fetch_c(&t, &c);
        assert!(res.rows.is_empty());
        assert_eq!(res.stats.range_queries_empty, 1);
        assert_eq!(res.stats.range_queries_executed, 0);
        assert_eq!(res.stats.points_read, 0);
    }

    #[test]
    fn degenerate_region_rejected_in_planning() {
        let t = table();
        let region = HyperRect::from_intervals(vec![
            Interval::new(3.0, 3.0, true, false), // empty interval
            Interval::closed(0.0, 9.0),
        ]);
        let res = fetch_one(&t, &region);
        assert!(res.rows.is_empty());
        assert_eq!(res.stats.range_queries_empty, 1);
        assert_eq!(res.stats.index_probes, 0);
    }

    #[test]
    fn half_open_region_excludes_boundary() {
        let t = table();
        let region = HyperRect::from_intervals(vec![
            Interval::new(2.0, 4.0, true, true), // only key 3
            Interval::closed(0.0, 9.0),
        ]);
        let res = fetch_one(&t, &region);
        assert_eq!(res.rows.len(), 10);
        assert!(res.rows.iter().all(|r| r.point[0] == 3.0));
    }

    #[test]
    fn unbounded_query_scans_heap() {
        let t = table();
        let c = Constraints::unbounded(2).unwrap();
        let res = fetch_c(&t, &c);
        assert_eq!(res.rows.len(), 100);
        assert_eq!(res.stats.points_read, 100);
        assert_eq!(res.stats.heap_fetches, 100);
    }

    #[test]
    fn batch_merges_stats() {
        let t = table();
        let r1 = Constraints::from_pairs(&[(0.0, 1.0), (0.0, 1.0)]).unwrap().region();
        let r2 = Constraints::from_pairs(&[(8.0, 9.0), (8.0, 9.0)]).unwrap().region();
        let res = t.fetch_plan(&FetchPlan::new(vec![r1, r2]));
        assert_eq!(res.rows.len(), 8);
        assert_eq!(res.stats.range_queries_issued, 2);
        assert_eq!(res.stats.range_queries_executed, 2);
        assert_eq!(res.stats.rows_matched, 8);
    }

    #[test]
    fn parallel_batch_matches_sequential_exactly() {
        let t = table();
        let regions: Vec<HyperRect> = [
            [(0.0, 2.0), (0.0, 2.0)],
            [(7.0, 9.0), (7.0, 9.0)],
            [(3.0, 4.0), (5.0, 6.0)],
            [(20.0, 30.0), (0.0, 9.0)], // empty
            [(5.0, 5.0), (0.0, 9.0)],
        ]
        .iter()
        .map(|pairs| Constraints::from_pairs(pairs).unwrap().region())
        .collect();
        let seq = t.fetch_plan(&FetchPlan::new(regions.clone()));
        for lanes in [1, 2, 3, 8] {
            let par = t.fetch_plan(&FetchPlan::new(regions.clone()).with_lanes(lanes));
            assert_eq!(par.rows, seq.rows, "{lanes} lanes: row mismatch");
            assert_eq!(par.stats, seq.stats, "{lanes} lanes: stats mismatch");
        }
    }

    #[test]
    fn parallel_batch_charges_slowest_lane() {
        let t = table();
        let regions: Vec<HyperRect> =
            [[(0.0, 2.0), (0.0, 2.0)], [(7.0, 9.0), (7.0, 9.0)], [(3.0, 4.0), (5.0, 6.0)]]
                .iter()
                .map(|pairs| Constraints::from_pairs(pairs).unwrap().region())
                .collect();
        let singles: Vec<Duration> =
            regions.iter().map(|r| fetch_one(&t, r).simulated_latency).collect();

        // 3 lanes, 3 regions: each lane runs one query, so the batch
        // costs exactly the most expensive single query.
        let par = t.fetch_plan(&FetchPlan::new(regions.clone()).with_lanes(3));
        assert_eq!(par.simulated_latency, singles.iter().copied().max().unwrap());
        assert!(
            par.simulated_latency
                < t.fetch_plan(&FetchPlan::new(regions.clone())).simulated_latency
        );

        // 2 lanes, round-robin: lane 0 gets regions 0 and 2, lane 1 gets
        // region 1.
        let par2 = t.fetch_plan(&FetchPlan::new(regions.clone()).with_lanes(2));
        assert_eq!(par2.simulated_latency, (singles[0] + singles[2]).max(singles[1]));

        // 1 lane degenerates to the sequential sum.
        let par1 = t.fetch_plan(&FetchPlan::new(regions.clone()).with_lanes(1));
        assert_eq!(
            par1.simulated_latency,
            t.fetch_plan(&FetchPlan::new(regions.clone())).simulated_latency
        );
    }

    #[test]
    fn lane_latencies_expose_per_lane_totals() {
        let t = table();
        let regions: Vec<HyperRect> =
            [[(0.0, 2.0), (0.0, 2.0)], [(7.0, 9.0), (7.0, 9.0)], [(3.0, 4.0), (5.0, 6.0)]]
                .iter()
                .map(|pairs| Constraints::from_pairs(pairs).unwrap().region())
                .collect();
        let singles: Vec<Duration> =
            regions.iter().map(|r| fetch_one(&t, r).simulated_latency).collect();

        // Round-robin: 3 lanes ↔ one region each; 2 lanes ↔ {0, 2} and {1}.
        let par3 = t.fetch_plan(&FetchPlan::new(regions.clone()).with_lanes(3));
        assert_eq!(par3.lane_latencies, singles);
        let par2 = t.fetch_plan(&FetchPlan::new(regions.clone()).with_lanes(2));
        assert_eq!(par2.lane_latencies, vec![singles[0] + singles[2], singles[1]]);
        // Sequential plans report no lanes, and absorb never merges them.
        let seq = t.fetch_plan(&FetchPlan::new(regions.clone()));
        assert!(seq.lane_latencies.is_empty());
        let mut folded = par3.clone();
        folded.absorb(seq);
        assert_eq!(folded.lane_latencies, singles);
    }

    #[test]
    fn record_into_publishes_canonical_metrics() {
        let t = table();
        let regions: Vec<HyperRect> = [
            [(0.0, 2.0), (0.0, 2.0)],
            [(7.0, 9.0), (7.0, 9.0)],
            [(20.0, 30.0), (0.0, 9.0)], // empty
        ]
        .iter()
        .map(|pairs| Constraints::from_pairs(pairs).unwrap().region())
        .collect();
        let res = t.fetch_plan(&FetchPlan::new(regions).with_lanes(3));

        let mut rec = skycache_obs::QueryRecorder::new();
        res.record_into(&mut rec);
        let report = rec.into_report();
        assert_eq!(report.counter(names::FETCH_REGIONS), res.stats.range_queries_issued);
        assert_eq!(report.counter(names::FETCH_RQ_EXECUTED), 2);
        assert_eq!(report.counter(names::FETCH_RQ_EMPTY), 1);
        assert_eq!(report.counter(names::FETCH_POINTS_READ), res.stats.points_read);
        assert_eq!(report.counter(names::FETCH_HEAP_FETCHES), res.stats.heap_fetches);
        assert_eq!(report.counter(names::FETCH_INDEX_PROBES), res.stats.index_probes);
        assert_eq!(report.gauge(names::LANES_FETCH), Some(3.0));
        assert!(report.gauge(names::LANES_FETCH_IMBALANCE).unwrap() >= 1.0);
        let lanes_hist = report.registry().histogram(names::LANES_FETCH_LATENCY_NS).unwrap();
        assert_eq!(lanes_hist.count(), 3);
        let fetch_hist = report.registry().histogram(names::FETCH_LATENCY_NS).unwrap();
        assert_eq!(fetch_hist.count(), 1);
        assert_eq!(fetch_hist.sum(), res.simulated_latency.as_nanos() as f64);
    }

    #[test]
    fn pages_touched_counts_distinct_pages() {
        let cfg = TableConfig { page_capacity: 10, ..Default::default() };
        let points: Vec<Point> = (0..10)
            .flat_map(|i| (0..10).map(move |j| Point::from(vec![i as f64, j as f64])))
            .collect();
        let t = Table::build(points, cfg).unwrap();
        // Rows 0..100 land on pages 0..10; one grid column i spans rows
        // 10i..10i+10, i.e. exactly one page.
        let c = Constraints::from_pairs(&[(3.0, 3.0), (0.0, 9.0)]).unwrap();
        let res = fetch_c(&t, &c);
        assert_eq!(t.pages_touched(&res.rows), 1);
        let all = fetch_c(&t, &Constraints::unbounded(2).unwrap());
        assert_eq!(t.pages_touched(&all.rows), 10);
        assert_eq!(t.pages_touched(&[]), 0);
    }

    #[test]
    fn fetch_plan_builders() {
        let c = Constraints::from_pairs(&[(1.0, 2.0), (1.0, 2.0)]).unwrap();
        let plan = FetchPlan::constrained(&c);
        assert_eq!(plan.regions, vec![c.region()]);
        assert_eq!(plan.lanes, 1);
        assert_eq!(plan.resolved_lanes(), 1);
        // Lanes clamp to the region count (and to 1 from below).
        assert_eq!(FetchPlan::single(c.region()).with_lanes(16).resolved_lanes(), 1);
        assert_eq!(FetchPlan::new(vec![]).with_lanes(4).resolved_lanes(), 1);
        let two = FetchPlan::new(vec![c.region(), c.region()]).with_lanes(0);
        assert_eq!(two.resolved_lanes(), 1);
        assert_eq!(two.with_lanes(8).resolved_lanes(), 2);
    }

    /// The deprecated entry points must stay behaviourally identical to
    /// the [`FetchPlan`] they delegate to until they are removed.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_fetch_plan() {
        let t = table();
        let c = Constraints::from_pairs(&[(2.0, 4.0), (3.0, 5.0)]).unwrap();
        let r = c.region();
        assert_eq!(t.fetch(&r).stats, fetch_one(&t, &r).stats);
        assert_eq!(t.fetch_constrained(&c).rows, fetch_c(&t, &c).rows);
        let regions = vec![r.clone(), Constraints::unbounded(2).unwrap().region()];
        assert_eq!(
            t.fetch_batch(&regions).stats,
            t.fetch_plan(&FetchPlan::new(regions.clone())).stats
        );
        let par = t.fetch_batch_parallel(&regions, 2);
        let planned = t.fetch_plan(&FetchPlan::new(regions).with_lanes(2));
        assert_eq!(par.stats, planned.stats);
        assert_eq!(par.lane_latencies, planned.lane_latencies);
    }

    #[test]
    fn parallel_batch_handles_degenerate_inputs() {
        let t = table();
        // Empty region list.
        let none = t.fetch_plan(&FetchPlan::new(vec![]).with_lanes(4));
        assert!(none.rows.is_empty());
        assert_eq!(none.stats, FetchStats::default());
        // More lanes than regions is clamped.
        let r = Constraints::from_pairs(&[(1.0, 2.0), (1.0, 2.0)]).unwrap().region();
        let one = t.fetch_plan(&FetchPlan::single(r.clone()).with_lanes(16));
        assert_eq!(one.rows, fetch_one(&t, &r).rows);
        // Zero lanes behaves as one.
        let zero = t.fetch_plan(&FetchPlan::single(r.clone()).with_lanes(0));
        assert_eq!(zero.stats, one.stats);
    }

    #[test]
    fn simulated_latency_uses_cost_model() {
        let t = table();
        let c = Constraints::from_pairs(&[(2.0, 4.0), (3.0, 5.0)]).unwrap();
        let res = fetch_c(&t, &c);
        let expect = t.config().cost_model.fetch_latency(&res.stats);
        assert_eq!(res.simulated_latency, expect);
        assert!(res.simulated_latency > Duration::ZERO);
    }

    #[test]
    fn insert_is_queryable_immediately() {
        let mut t = table();
        let row = t.insert(Point::from(vec![3.5, 3.5])).unwrap();
        assert_eq!(t.len(), 101);
        assert!(t.is_live(row));
        let c = Constraints::from_pairs(&[(3.2, 3.8), (3.2, 3.8)]).unwrap();
        let res = fetch_c(&t, &c);
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.rows[0].id, row);
        // Dimensionality is validated.
        assert!(t.insert(Point::from(vec![1.0])).is_err());
    }

    #[test]
    fn delete_removes_from_all_plans() {
        let mut t = table();
        // Row for point (4, 4) in the grid: row = 4*10 + 4.
        let deleted = t.delete(44).unwrap();
        assert_eq!(deleted, Point::from(vec![4.0, 4.0]));
        assert_eq!(t.len(), 99);
        assert!(!t.is_live(44));
        assert!(t.delete(44).is_none(), "double delete is a no-op");

        // Single-index and bitmap plans no longer see it.
        let c = Constraints::from_pairs(&[(4.0, 4.0), (4.0, 4.0)]).unwrap();
        assert!(fetch_c(&t, &c).rows.is_empty());
        // Sequential scan path skips it too.
        let all = fetch_c(&t, &Constraints::unbounded(2).unwrap());
        assert_eq!(all.rows.len(), 99);
        assert!(all.rows.iter().all(|r| r.id != 44));
        // live_points agrees.
        assert_eq!(t.live_points().count(), 99);
    }

    #[test]
    fn mutated_table_matches_rebuilt_table() {
        let mut t = table();
        t.delete(17).unwrap();
        t.delete(83).unwrap();
        let added = Point::from(vec![2.5, 7.5]);
        t.insert(added.clone()).unwrap();

        // Rebuild from the live set and compare query results.
        let live: Vec<Point> = t.live_points().map(|(_, p)| p.clone()).collect();
        let rebuilt = Table::build(live, TableConfig::default()).unwrap();
        for c in [
            Constraints::from_pairs(&[(0.0, 9.0), (0.0, 9.0)]).unwrap(),
            Constraints::from_pairs(&[(1.0, 3.0), (6.0, 8.0)]).unwrap(),
            Constraints::from_pairs(&[(2.5, 2.5), (7.5, 7.5)]).unwrap(),
        ] {
            let mut a: Vec<Point> = fetch_c(&t, &c).rows.into_iter().map(|r| r.point).collect();
            let mut b: Vec<Point> =
                fetch_c(&rebuilt, &c).rows.into_iter().map(|r| r.point).collect();
            let key = |p: &Point| (p[0].to_bits(), p[1].to_bits());
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b, "constraints {c:?}");
        }
    }

    #[test]
    fn page_accounting() {
        let cfg = TableConfig { page_capacity: 7, ..Default::default() };
        let t = Table::build((0..20).map(|i| Point::from(vec![i as f64])).collect(), cfg).unwrap();
        assert_eq!(t.page_of(0), 0);
        assert_eq!(t.page_of(6), 0);
        assert_eq!(t.page_of(7), 1);
        assert_eq!(t.page_of(19), 2);
    }
}
