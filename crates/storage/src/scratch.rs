//! Reusable fetch workspaces: the allocation-free side of
//! [`Table::fetch_plan_into`](crate::Table::fetch_plan_into).
//!
//! Every growable buffer the block-oriented fetch path needs lives here,
//! owned by a [`FetchScratch`] that callers keep across queries (via the
//! engine's per-executor `QueryScratch`). After warmup the buffers have
//! reached their high-water marks and a fetch performs no heap
//! allocation at all.
//!
//! Ownership rules (see DESIGN.md §12): the *table* never stores scratch
//! state — it borrows a `FetchScratch` per call; the *scratch* never
//! holds table references — it is plain reusable memory; and the fetched
//! rows stay inside [`FetchBuf`] as borrowed views until a caller
//! explicitly materializes `Point`s at the public-API boundary.
//!
//! This file is deliberately **not** a `skylint` `scope-file`: the fetch
//! kernel in `table.rs` is lint-checked and calls only the amortized
//! mutators below (`append`, `note_*`, `mark`, …) whose names are not in
//! the lint's allocation list — growth happens here, once, not per row
//! on the hot path.

use std::time::Duration;

use crate::cost::{CostModel, FetchStats};
use crate::table::RowId;

/// Columnar fetch output: row ids plus a row-major coordinate block,
/// reused across queries (the zero-copy replacement for `Vec<Row>`).
#[derive(Clone, Debug, Default)]
pub struct FetchBuf {
    ids: Vec<RowId>,
    coords: Vec<f64>,
    dims: usize,
}

impl FetchBuf {
    /// An empty buffer; dimensionality is set by the first fetch.
    pub fn new() -> Self {
        FetchBuf::default()
    }

    /// Clears contents and (re)binds the dimensionality.
    pub(crate) fn reset(&mut self, dims: usize) {
        self.ids.clear();
        self.coords.clear();
        self.dims = dims;
    }

    /// Number of buffered rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the buffer holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dimensionality of the buffered rows.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Row ids, parallel to [`FetchBuf::coords`].
    pub fn ids(&self) -> &[RowId] {
        &self.ids
    }

    /// All coordinates as one flat row-major block.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// The coordinates of buffered row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dims..(i + 1) * self.dims]
    }

    /// Appends one row. Amortized O(1); allocation only on growth.
    #[inline]
    pub(crate) fn append(&mut self, id: RowId, row: &[f64]) {
        debug_assert_eq!(row.len(), self.dims);
        self.ids.push(id);
        self.coords.extend_from_slice(row);
    }

    /// Appends row `i` of another buffer.
    #[inline]
    pub(crate) fn append_from(&mut self, other: &FetchBuf, i: usize) {
        debug_assert_eq!(other.dims, self.dims);
        self.ids.push(other.ids[i]);
        self.coords.extend_from_slice(other.row(i));
    }
}

/// How a region left the planning phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) enum RegionState {
    /// Geometrically empty; rejected before any index work.
    #[default]
    Degenerate,
    /// An index probe proved the region matches nothing.
    Empty,
    /// No dimension is bounded: answered by a full heap scan.
    FullScan,
    /// Has a chosen index dimension and a non-empty position range.
    Ready,
}

/// Planning-phase record for one region of a plan.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct RegionProbe {
    /// Range into [`FetchScratch::probed`] holding this region's probes.
    pub probed_start: u32,
    pub probed_end: u32,
    pub state: RegionState,
    /// Chosen (most selective) index dimension, when `Ready`.
    pub chosen_dim: u32,
    /// Position range `[pos_lo, pos_hi)` in the chosen dimension's index.
    pub pos_lo: u32,
    pub pos_hi: u32,
}

/// One probed dimension of a region: its index position range.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ProbedDim {
    pub dim: u32,
    pub pos_lo: u32,
    pub pos_hi: u32,
}

impl ProbedDim {
    #[inline]
    pub(crate) fn count(&self) -> usize {
        (self.pos_hi - self.pos_lo) as usize
    }
}

/// Execution shape of a unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) enum UnitKind {
    /// A degenerate region: accounting only.
    #[default]
    Degenerate,
    /// Proved empty by index probes: accounting only.
    ProbedEmpty,
    /// One fully unbounded region: sequential heap scan.
    Scan,
    /// One ready region: the classic single-region plan (bitmap or
    /// single-index scan).
    Single,
    /// Several ready regions sharing one merged index range: one range
    /// query scanning the union slice, candidates tested against every
    /// member region.
    Merged,
}

/// One executable unit of a fetch plan: a group of regions answered by a
/// single (possibly merged) range query.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FetchUnit {
    /// Range into [`FetchScratch::order`] listing member region indices.
    pub members_start: u32,
    pub members_end: u32,
    /// Chosen index dimension shared by all members (when indexed).
    pub dim: u32,
    /// Merged position range `[pos_lo, pos_hi)` in that dimension.
    pub pos_lo: u32,
    pub pos_hi: u32,
    pub kind: UnitKind,
    /// Plan-time latency estimate, used to order coalesced execution.
    pub est_ns: u64,
    /// Position of this unit in the execution order.
    pub exec_pos: u32,
}

/// Per-heap-slot dedup marks with epoch-based O(1) reset.
#[derive(Clone, Debug, Default)]
pub(crate) struct SeenSet {
    marks: Vec<u32>,
    epoch: u32,
}

impl SeenSet {
    /// Starts a fresh dedup pass over a heap of `slots` rows.
    pub(crate) fn begin_pass(&mut self, slots: usize) {
        if self.marks.len() < slots {
            self.marks.resize(slots, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: old marks could alias; hard-reset once every
            // u32::MAX passes.
            self.marks.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks a row as emitted; returns `true` on first sighting.
    #[inline]
    pub(crate) fn mark(&mut self, row: RowId) -> bool {
        let slot = &mut self.marks[row as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// One lane's private staging state during multi-lane execution.
#[derive(Clone, Debug, Default)]
pub(crate) struct LaneWorkspace {
    /// Rows fetched by this lane, in this lane's execution order.
    pub buf: FetchBuf,
    /// `(unit, start, end)` spans into `buf`, one per executed unit.
    pub segs: Vec<LaneSegment>,
    /// Sum of this lane's unit stats.
    pub stats: FetchStats,
    /// Sequential latency total of this lane.
    pub total: Duration,
}

/// Span of one unit's rows inside a lane buffer.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct LaneSegment {
    pub unit: u32,
    pub start: u32,
    pub end: u32,
}

impl LaneWorkspace {
    fn reset(&mut self, dims: usize) {
        self.buf.reset(dims);
        self.segs.clear();
        self.stats = FetchStats::default();
        self.total = Duration::ZERO;
    }

    /// Records the span of rows a unit appended to this lane's buffer.
    #[inline]
    pub(crate) fn seg_mark(&mut self, unit: u32, start: u32, end: u32) {
        self.segs.push(LaneSegment { unit, start, end });
    }
}

/// Shared read-only view of the planning state, handed to execution
/// lanes (all slices, so it is `Copy + Send + Sync`).
#[derive(Clone, Copy)]
pub(crate) struct ExecView<'a> {
    pub probed: &'a [ProbedDim],
    pub regions: &'a [RegionProbe],
    pub region_stats: &'a [FetchStats],
    pub order: &'a [u32],
    pub units: &'a [FetchUnit],
    pub exec_order: &'a [u32],
}

impl ExecView<'_> {
    /// The probed dimensions of region `r`.
    #[inline]
    pub(crate) fn probed_of(&self, r: u32) -> &[ProbedDim] {
        let pr = &self.regions[r as usize];
        &self.probed[pr.probed_start as usize..pr.probed_end as usize]
    }

    /// The member region indices of `unit`.
    #[inline]
    pub(crate) fn members_of(&self, unit: &FetchUnit) -> &[u32] {
        &self.order[unit.members_start as usize..unit.members_end as usize]
    }
}

/// The complete per-caller workspace of the block-oriented fetch path.
///
/// Hold one per executor and pass it to every
/// [`Table::fetch_plan_into`](crate::Table::fetch_plan_into) call; the
/// fetched rows are then readable through [`FetchScratch::rows`] until
/// the next fetch reuses the buffers.
#[derive(Clone, Debug, Default)]
pub struct FetchScratch {
    /// Final merged output rows.
    out: FetchBuf,
    /// Flat probe records, region-delimited via `RegionProbe`.
    probed: Vec<ProbedDim>,
    /// One planning record per plan region.
    regions: Vec<RegionProbe>,
    /// Planning-phase stats (issued/empty/probes) per region.
    region_stats: Vec<FetchStats>,
    /// Region indices, grouped into units (`FetchUnit` spans).
    order: Vec<u32>,
    /// Executable units.
    units: Vec<FetchUnit>,
    /// Unit indices in execution order.
    exec_order: Vec<u32>,
    /// Per-lane staging buffers.
    lanes: Vec<LaneWorkspace>,
    /// Cross-unit row dedup marks (coalesced plans only).
    seen: SeenSet,
    dims: usize,
}

impl FetchScratch {
    /// An empty workspace.
    pub fn new() -> Self {
        FetchScratch::default()
    }

    /// The rows of the most recent fetch, as a borrowed columnar view.
    pub fn rows(&self) -> &FetchBuf {
        &self.out
    }

    /// Clears all per-fetch state and binds the table dimensionality.
    pub(crate) fn begin(&mut self, dims: usize) {
        self.out.reset(dims);
        self.probed.clear();
        self.regions.clear();
        self.region_stats.clear();
        self.order.clear();
        self.units.clear();
        self.exec_order.clear();
        self.dims = dims;
    }

    /// Current length of the probe log (used to delimit a region's run).
    #[inline]
    pub(crate) fn probe_mark(&self) -> u32 {
        self.probed.len() as u32
    }

    /// Logs one probed dimension of the region being planned.
    #[inline]
    pub(crate) fn note_probe(&mut self, dim: u32, pos_lo: u32, pos_hi: u32) {
        self.probed.push(ProbedDim { dim, pos_lo, pos_hi });
    }

    /// The probes logged since `mark` (the region being planned).
    #[inline]
    pub(crate) fn probes_since(&self, mark: u32) -> &[ProbedDim] {
        &self.probed[mark as usize..]
    }

    /// Finishes planning one region.
    #[inline]
    pub(crate) fn note_region(&mut self, probe: RegionProbe, stats: FetchStats) {
        self.regions.push(probe);
        self.region_stats.push(stats);
    }

    /// Number of executable units built for the current plan.
    #[inline]
    pub(crate) fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Groups the planned regions into executable units and fixes the
    /// execution order. Returns the number of range queries saved by
    /// coalescing (ready candidates minus ready units; `0` when
    /// `coalesce` is off).
    ///
    /// Non-coalescing plans get exactly one unit per region, executed in
    /// region order — the legacy per-region semantics. Coalescing plans
    /// group ready regions by chosen dimension, merge position ranges
    /// that overlap or abut into one range query each, and execute units
    /// cheapest-estimate-first (deterministic tie-break: first member
    /// region index).
    pub(crate) fn build_units(
        &mut self,
        coalesce: bool,
        model: &CostModel,
        slot_count: usize,
    ) -> u64 {
        self.units.clear();
        self.exec_order.clear();
        self.order.clear();
        let n = self.regions.len();
        self.order.extend(0..n as u32);

        let saved = if coalesce {
            // Group ready regions: sort by (dim, pos_lo, pos_hi, idx) after
            // the non-ready ones (kept in region order), then merge
            // consecutive overlapping/abutting position ranges.
            let regions = &self.regions;
            self.order.sort_unstable_by_key(|&i| {
                let pr = &regions[i as usize];
                match pr.state {
                    RegionState::Ready => (1u8, pr.chosen_dim, pr.pos_lo, pr.pos_hi, i),
                    _ => (0u8, 0, 0, 0, i),
                }
            });
            let mut ready_candidates = 0u64;
            let mut ready_units = 0u64;
            let mut k = 0usize;
            while k < self.order.len() {
                let i = self.order[k] as usize;
                let pr = self.regions[i];
                match pr.state {
                    RegionState::Degenerate | RegionState::Empty | RegionState::FullScan => {
                        let kind = match pr.state {
                            RegionState::Degenerate => UnitKind::Degenerate,
                            RegionState::Empty => UnitKind::ProbedEmpty,
                            _ => UnitKind::Scan,
                        };
                        self.units.push(FetchUnit {
                            members_start: k as u32,
                            members_end: k as u32 + 1,
                            dim: pr.chosen_dim,
                            pos_lo: pr.pos_lo,
                            pos_hi: pr.pos_hi,
                            kind,
                            est_ns: 0,
                            exec_pos: 0,
                        });
                        k += 1;
                    }
                    RegionState::Ready => {
                        let start = k;
                        let dim = pr.chosen_dim;
                        let pos_lo = pr.pos_lo;
                        let mut pos_hi = pr.pos_hi;
                        k += 1;
                        while k < self.order.len() {
                            let q = self.regions[self.order[k] as usize];
                            if q.state != RegionState::Ready
                                || q.chosen_dim != dim
                                || q.pos_lo > pos_hi
                            {
                                break;
                            }
                            pos_hi = pos_hi.max(q.pos_hi);
                            k += 1;
                        }
                        let members = (k - start) as u64;
                        ready_candidates += members;
                        ready_units += 1;
                        self.units.push(FetchUnit {
                            members_start: start as u32,
                            members_end: k as u32,
                            dim,
                            pos_lo,
                            pos_hi,
                            kind: if members == 1 { UnitKind::Single } else { UnitKind::Merged },
                            est_ns: 0,
                            exec_pos: 0,
                        });
                    }
                }
            }
            ready_candidates - ready_units
        } else {
            for (i, pr) in self.regions.iter().enumerate() {
                let kind = match pr.state {
                    RegionState::Degenerate => UnitKind::Degenerate,
                    RegionState::Empty => UnitKind::ProbedEmpty,
                    RegionState::FullScan => UnitKind::Scan,
                    RegionState::Ready => UnitKind::Single,
                };
                self.units.push(FetchUnit {
                    members_start: i as u32,
                    members_end: i as u32 + 1,
                    dim: pr.chosen_dim,
                    pos_lo: pr.pos_lo,
                    pos_hi: pr.pos_hi,
                    kind,
                    est_ns: 0,
                    exec_pos: 0,
                });
            }
            0
        };

        // Plan-time latency estimates (for ordering only; accounting uses
        // actual post-execution stats).
        for unit in &mut self.units {
            let mut est = FetchStats::default();
            for &r in &self.order[unit.members_start as usize..unit.members_end as usize] {
                est += self.region_stats[r as usize];
            }
            match unit.kind {
                UnitKind::Degenerate | UnitKind::ProbedEmpty => {}
                UnitKind::Scan => {
                    est.range_queries_executed = 1;
                    est.heap_fetches = slot_count as u64;
                }
                UnitKind::Single | UnitKind::Merged => {
                    let span = (unit.pos_hi - unit.pos_lo) as u64;
                    est.range_queries_executed = 1;
                    est.heap_fetches = span;
                    est.index_entries_scanned = span;
                }
            }
            unit.est_ns = model.fetch_latency(&est).as_nanos() as u64;
        }

        self.exec_order.extend(0..self.units.len() as u32);
        if coalesce {
            let units = &self.units;
            let order = &self.order;
            self.exec_order.sort_unstable_by_key(|&u| {
                let unit = &units[u as usize];
                (unit.est_ns, order[unit.members_start as usize])
            });
        }
        for (p, &u) in self.exec_order.iter().enumerate() {
            self.units[u as usize].exec_pos = p as u32;
        }
        saved
    }

    /// Splits the workspace into a shared planning view plus `lanes`
    /// reset lane workspaces for execution.
    pub(crate) fn view_and_lanes(&mut self, lanes: usize) -> (ExecView<'_>, &mut [LaneWorkspace]) {
        if self.lanes.len() < lanes {
            self.lanes.resize_with(lanes, LaneWorkspace::default);
        }
        let dims = self.dims;
        for ws in &mut self.lanes[..lanes] {
            ws.reset(dims);
        }
        let FetchScratch {
            probed, regions, region_stats, order, units, exec_order, lanes: lw, ..
        } = self;
        (ExecView { probed, regions, region_stats, order, units, exec_order }, &mut lw[..lanes])
    }

    /// Splits the workspace for the merge phase: planning view, output
    /// buffer, the executed lane workspaces, and the dedup set.
    pub(crate) fn merge_parts(
        &mut self,
        lanes: usize,
    ) -> (ExecView<'_>, &mut FetchBuf, &[LaneWorkspace], &mut SeenSet) {
        let FetchScratch {
            out,
            probed,
            regions,
            region_stats,
            order,
            units,
            exec_order,
            lanes: lw,
            seen,
            ..
        } = self;
        (
            ExecView { probed, regions, region_stats, order, units, exec_order },
            out,
            &lw[..lanes],
            seen,
        )
    }

    /// The per-lane latency totals of the last execution, as an owned
    /// list (one entry per active lane).
    pub(crate) fn lane_latency_list(&self, lanes: usize) -> Vec<Duration> {
        self.lanes[..lanes].iter().map(|ws| ws.total).collect()
    }

    /// Sequential latency total of one lane from the last execution
    /// (allocation-free alternative to [`FetchScratch::lane_latency_list`]
    /// for single-lane plans).
    #[inline]
    pub(crate) fn lane_total(&self, lane: usize) -> Duration {
        self.lanes[lane].total
    }
}
