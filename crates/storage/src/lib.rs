//! Paged point storage with per-dimension indexes and an I/O cost model.
//!
//! This crate is the workspace's substitute for the paper's experimental
//! substrate — "data is stored in PostgreSQL 9.1 with each dimension
//! indexed by a standard B-tree" (Section 7). It reproduces the three
//! behaviours the evaluation depends on:
//!
//! 1. **Single-index range plans.** A range query probes every per-dimension
//!    index, picks the most selective one, fetches that index's candidate
//!    rows from the heap and post-filters the remaining dimensions — the
//!    plan PostgreSQL chooses for one-index-applicable range predicates.
//! 2. **Empty-query detection.** "The remaining queries were discarded by
//!    the DBMS without any disk seeks because the B-trees detect the empty
//!    queries" (Section 7.3.2): a query whose projection on any indexed
//!    dimension is empty is answered from the index alone.
//! 3. **Deterministic I/O accounting.** Instead of timing a spinning disk,
//!    [`CostModel`] converts the observable work (range-query seeks, heap
//!    points fetched, index probes) into simulated nanoseconds, and
//!    [`FetchStats`] exposes the raw counters that the paper plots
//!    (points read — Fig. 8; range queries generated/executed — Fig. 9;
//!    fetch time — Figs. 5–7, 10, 12).
//!
//! The store itself is columnar-free and in-memory: pages of points plus a
//! sorted `(key, row)` array per dimension (the B-tree equivalent, with
//! `O(log n)` range location); [`Table::insert`]/[`Table::delete`] support
//! the dynamic-data extension and [`Table::save`]/[`Table::load`] persist
//! snapshots.
//!
//! ```
//! use skycache_geom::{Constraints, Point};
//! use skycache_storage::{FetchPlan, Table, TableConfig};
//!
//! let points: Vec<Point> = (0..100)
//!     .map(|i| Point::from(vec![f64::from(i % 10), f64::from(i / 10)]))
//!     .collect();
//! let table = Table::build(points, TableConfig::default()).unwrap();
//!
//! let c = Constraints::from_pairs(&[(2.0, 4.0), (3.0, 5.0)]).unwrap();
//! let result = table.fetch_plan(&FetchPlan::constrained(&c));
//! assert_eq!(result.rows.len(), 9);
//! // Both per-dimension indexes were probed; a bitmap AND plan read only
//! // the matching rows from the heap.
//! assert_eq!(result.stats.points_read, 9);
//! assert!(result.simulated_latency.as_nanos() > 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(rust_2018_idioms)]

mod cost;
mod error;
mod index;
mod persist;
mod scratch;
mod table;

pub use cost::{CostModel, FetchStats};
pub use error::StorageError;
pub use index::ColumnIndex;
pub use persist::SnapshotDir;
pub use scratch::{FetchBuf, FetchScratch};
pub use table::{FetchOutcome, FetchPlan, FetchResult, Row, RowId, Table, TableConfig};

/// Convenience alias for storage results.
pub type Result<T> = std::result::Result<T, StorageError>;
