//! Deterministic metric storage: counters, gauges, log-bucket histograms.
//!
//! Everything is keyed by `&'static str` names (see [`crate::names`]) in
//! `BTreeMap`s, so iteration order — and therefore every serialized
//! report — is independent of hasher seeds (the workspace determinism
//! policy).

use std::collections::BTreeMap;

/// A histogram over non-negative samples with power-of-two buckets.
///
/// Bucket `i` covers `(2^i, 2^(i+1)]` (bucket 0 also takes everything
/// `<= 1`), which spans the full `u64` nanosecond range in 64 fixed
/// slots — no allocation per sample, no configuration. Quantiles are
/// bucket-upper-bound approximations, clamped to the observed min/max.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    /// Bucket index of one sample.
    fn bucket_of(value: f64) -> usize {
        let v = if value.is_finite() && value > 1.0 { value as u64 } else { 1 };
        // floor(log2(v)), capped at the last bucket.
        (63 - v.leading_zeros() as usize).min(63)
    }

    /// Adds one sample. Negative and non-finite samples clamp into
    /// bucket 0 but still count toward `count`/`sum` bookkeeping
    /// (min/max ignore non-finite values).
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of finite samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest finite sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 || !self.min.is_finite() {
            0.0
        } else {
            self.min
        }
    }

    /// Largest finite sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 || !self.max.is_finite() {
            0.0
        } else {
            self.max
        }
    }

    /// Mean of finite samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket holding the `ceil(q·count)`-th sample, clamped to
    /// `[min, max]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let upper = if i >= 63 { f64::INFINITY } else { (1u64 << (i + 1)) as f64 };
                return upper.clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Counters, gauges and histograms under their canonical names.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds to a monotone counter (created at 0 on first use).
    pub fn add_counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets a gauge to a point-in-time value (last write wins).
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Adds one sample to a histogram (created empty on first use).
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    /// A counter's value (0 when never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram, if any sample was recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one: counters add, gauges take
    /// the other's value (last write wins), histograms merge.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in other.counters() {
            self.add_counter(name, v);
        }
        for (name, v) in other.gauges() {
            self.set_gauge(name, v);
        }
        for (name, h) in other.histograms() {
            self.histograms.entry(name).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [1.0, 2.0, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
        assert_eq!(h.mean(), 26.5);
        // p50 lands in the (2,4] bucket, upper bound 4.
        assert_eq!(h.quantile(0.5), 4.0);
        // p100 clamps to the observed max.
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn histogram_empty_and_degenerate() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);

        let mut weird = Histogram::default();
        weird.observe(f64::NAN);
        weird.observe(-5.0);
        assert_eq!(weird.count(), 2);
        assert_eq!(weird.max(), -5.0); // the only finite sample
    }

    #[test]
    fn histogram_merge_matches_sequential_observation() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut all = Histogram::default();
        for v in [1.0, 7.0, 9.0] {
            a.observe(v);
            all.observe(v);
        }
        for v in [2.0, 1000.0] {
            b.observe(v);
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = Registry::new();
        r.add_counter("cache.hits", 1);
        r.add_counter("cache.hits", 2);
        r.set_gauge("lanes.fetch", 2.0);
        r.set_gauge("lanes.fetch", 4.0);
        r.observe("fetch.latency_ns", 10.0);
        assert_eq!(r.counter("cache.hits"), 3);
        assert_eq!(r.counter("cache.misses"), 0);
        assert_eq!(r.gauge("lanes.fetch"), Some(4.0));
        assert_eq!(r.histogram("fetch.latency_ns").unwrap().count(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn registry_merge_adds_counters_and_merges_histograms() {
        let mut a = Registry::new();
        a.add_counter("cache.hits", 1);
        a.observe("fetch.latency_ns", 8.0);
        let mut b = Registry::new();
        b.add_counter("cache.hits", 4);
        b.observe("fetch.latency_ns", 16.0);
        b.set_gauge("lanes.fetch", 2.0);
        a.merge(&b);
        assert_eq!(a.counter("cache.hits"), 5);
        assert_eq!(a.histogram("fetch.latency_ns").unwrap().count(), 2);
        assert_eq!(a.gauge("lanes.fetch"), Some(2.0));
    }
}
