//! Canonical metric names.
//!
//! One constant per metric, shared by producers (engine, cache, storage)
//! and consumers (reports, the bench aggregator, tests), so a renamed
//! metric is a compile error, not a silently empty dashboard column.
//! The README's "Observability" section carries the same table in prose.

// -- cache ------------------------------------------------------------------

/// Queries answered (at least partly) from a cached item. Counter.
pub const CACHE_HITS: &str = "cache.hits";
/// Queries computed from scratch. Counter.
pub const CACHE_MISSES: &str = "cache.misses";
/// Items evicted by the replacement policy. Counter.
pub const CACHE_EVICTIONS: &str = "cache.evictions";
/// Results inserted into the cache. Counter.
pub const CACHE_INSERTIONS: &str = "cache.insertions";
/// Overlapping candidate items returned by cache lookups. Counter.
pub const CACHE_CANDIDATES: &str = "cache.candidates";
/// Cached items individually tested for overlap during lookups (0 when
/// the cache-wide bounding box short-circuits the search). Counter.
pub const CACHE_OVERLAP_SCANS: &str = "cache.overlap_scans";
/// Cache hits answered by composing two or more cached items
/// (DESIGN.md §17.3). Counter; a strict subset of `cache.hits`.
pub const CACHE_COMPOSED_HITS: &str = "cache.composed_hits";
/// Fraction of the query region covered by cached items' trusted space
/// on a composed hit, in `[0, 1]`. Gauge.
pub const CACHE_COVER_FRACTION: &str = "cache.cover_fraction";
/// Insert attempts rejected by the TinyLFU admission gate
/// (DESIGN.md §17.1). Counter.
pub const CACHE_ADMISSION_REJECTS: &str = "cache.admission_rejects";
/// Cached skyline points retained into the new computation. Counter.
pub const CACHE_RETAINED_POINTS: &str = "cache.retained_points";
/// Cached skyline points invalidated by the new constraints. Counter.
pub const CACHE_REMOVED_POINTS: &str = "cache.removed_points";
/// Cached items examined by dynamic-data maintenance (constraint-box
/// index candidates tested on insert). Counter.
pub const CACHE_MAINTENANCE_SCANS: &str = "cache.maintenance_scans";

// -- fetch ------------------------------------------------------------------

/// Regions submitted to storage (one range query each). Counter.
pub const FETCH_REGIONS: &str = "fetch.regions";
/// Range queries that actually touched the heap. Counter.
pub const FETCH_RQ_EXECUTED: &str = "fetch.range_queries_executed";
/// Range queries discarded by index-only emptiness detection. Counter.
pub const FETCH_RQ_EMPTY: &str = "fetch.range_queries_empty";
/// Rows of the queried regions read from the heap. Counter.
pub const FETCH_POINTS_READ: &str = "fetch.points_read";
/// Heap tuples fetched by the chosen storage plans. Counter.
pub const FETCH_HEAP_FETCHES: &str = "fetch.heap_fetches";
/// Rows matching their region after post-filtering. Counter.
pub const FETCH_ROWS_MATCHED: &str = "fetch.rows_matched";
/// Per-dimension B-tree probes during planning. Counter.
pub const FETCH_INDEX_PROBES: &str = "fetch.index_probes";
/// Index entries scanned by the chosen plans. Counter.
pub const FETCH_INDEX_ENTRIES: &str = "fetch.index_entries_scanned";
/// Distinct heap pages touched by fetched rows (derived; only recorded
/// when the recorder is [`detailed`](crate::Recorder::detailed)). Counter.
pub const FETCH_PAGES_TOUCHED: &str = "fetch.pages_touched";
/// Range queries saved by the coalescing fetch planner (non-empty
/// candidate regions minus merged range queries executed for them; only
/// recorded when non-zero). Counter.
pub const FETCH_REGIONS_COALESCED: &str = "fetch.regions_coalesced";
/// Simulated I/O latency per fetch call, in nanoseconds. Histogram.
pub const FETCH_LATENCY_NS: &str = "fetch.latency_ns";

// -- mpr --------------------------------------------------------------------

/// Regions in the executed (a)MPR plan. Counter.
pub const MPR_REGIONS: &str = "mpr.regions";
/// Cached skyline points used for pruning during MPR construction. Counter.
pub const MPR_PRUNE_POINTS: &str = "mpr.prune_points";
/// Cached-region pieces invalidated by inverted-logic preprocessing. Counter.
pub const MPR_INVALIDATED_PIECES: &str = "mpr.invalidated_pieces";

// -- skyline ----------------------------------------------------------------

/// Pairwise dominance tests performed. Counter.
pub const SKYLINE_DOMINANCE_TESTS: &str = "skyline.dominance_tests";
/// Result cardinality. Counter.
pub const SKYLINE_RESULT_SIZE: &str = "skyline.result_size";

// -- lanes ------------------------------------------------------------------

/// Concurrent fetch lanes used by the last multi-region fetch. Gauge.
pub const LANES_FETCH: &str = "lanes.fetch";
/// Fetch-lane imbalance: slowest lane's simulated latency divided by the
/// mean lane latency (1.0 = perfectly balanced). Gauge.
pub const LANES_FETCH_IMBALANCE: &str = "lanes.fetch_imbalance";
/// Per-lane simulated fetch latency, in nanoseconds. Histogram.
pub const LANES_FETCH_LATENCY_NS: &str = "lanes.fetch_latency_ns";
/// Workers used by the parallel skyline kernel. Gauge.
pub const LANES_SKYLINE_WORKERS: &str = "lanes.skyline_workers";
/// Parallel-skyline imbalance: largest chunk-local skyline divided by
/// the mean local skyline size (1.0 = perfectly balanced). Gauge.
pub const LANES_SKYLINE_IMBALANCE: &str = "lanes.skyline_imbalance";

// -- serve ------------------------------------------------------------------

/// Queries answered by joining another session's in-flight computation
/// (singleflight coalescing in the service layer). Counter.
pub const SERVE_COALESCED: &str = "serve.coalesced";
/// Queries answered from the negative cache of provably-empty constraint
/// regions, without touching index or heap. Counter.
pub const SERVE_NEGATIVE_HITS: &str = "serve.negative_hits";
/// Constraint regions classified provably empty by the index-only probe
/// and recorded in the negative cache. Counter.
pub const SERVE_NEGATIVE_INSERTS: &str = "serve.negative_inserts";
/// Skyline computations actually executed by the service (misses plus
/// singleflight leaders). Counter.
pub const SERVE_COMPUTES: &str = "serve.computes";

// -- alloc ------------------------------------------------------------------

/// Heap allocations per query on the steady-state path, as measured by
/// the bench harness's counting allocator (reported by `repro perf`, not
/// by the engine itself). Gauge.
pub const ALLOC_PER_QUERY: &str = "alloc.per_query";
