//! Per-query capture ([`QueryRecorder`]) and the versioned JSON report.
//!
//! The report format is versioned: the top-level object carries
//! `"schema": "skyobs-report/1"` and consumers must check it. Field
//! order is fixed (phases in pipeline order, metrics in name order), so
//! two runs recording the same events serialize byte-identically — the
//! golden-file test under `tests/golden/` pins the exact bytes.

use std::fmt::Write as _;
use std::time::Duration;

use crate::metrics::{Histogram, Registry};
use crate::recorder::{Phase, Recorder};

/// Version tag of the report format.
pub const REPORT_SCHEMA: &str = "skyobs-report/1";

/// A [`Recorder`] capturing one query into a [`QueryReport`].
#[derive(Clone, Debug, Default)]
pub struct QueryRecorder {
    registry: Registry,
    phase_ns: [u64; Phase::COUNT],
}

impl QueryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        QueryRecorder::default()
    }

    /// Finishes recording and returns the captured report.
    pub fn into_report(self) -> QueryReport {
        QueryReport { registry: self.registry, phase_ns: self.phase_ns }
    }
}

impl Recorder for QueryRecorder {
    fn detailed(&self) -> bool {
        true
    }

    fn record_span(&mut self, phase: Phase, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.phase_ns[phase.index()] = self.phase_ns[phase.index()].saturating_add(ns);
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        self.registry.add_counter(name, delta);
    }

    fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.registry.set_gauge(name, value);
    }

    fn observe_value(&mut self, name: &'static str, value: f64) {
        self.registry.observe(name, value);
    }
}

/// Everything one query reported: per-phase wall time plus the metric
/// registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryReport {
    registry: Registry,
    phase_ns: [u64; Phase::COUNT],
}

impl QueryReport {
    /// Wall nanoseconds recorded for one phase.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.phase_ns[phase.index()]
    }

    /// Total wall nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// A counter's value (0 when never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.registry.counter(name)
    }

    /// A gauge's value, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.registry.gauge(name)
    }

    /// The underlying metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Folds another report into this one (phase times and counters
    /// add, histograms merge) — the bench aggregation primitive.
    pub fn merge(&mut self, other: &QueryReport) {
        for (a, b) in self.phase_ns.iter_mut().zip(other.phase_ns.iter()) {
            *a = a.saturating_add(*b);
        }
        self.registry.merge(&other.registry);
    }

    /// Renders the versioned JSON object (stable field order, no deps).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(REPORT_SCHEMA));
        out.push_str("  \"phases_ns\": {\n");
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let _ = write!(out, "    {}: {}", json_str(phase.label()), self.phase_ns[i]);
            out.push_str(if i + 1 < Phase::COUNT { ",\n" } else { "\n" });
        }
        out.push_str("  },\n");

        render_map(&mut out, "counters", self.registry.counters(), |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str(",\n");
        render_map(&mut out, "gauges", self.registry.gauges(), |out, v| {
            out.push_str(&json_f64(v));
        });
        out.push_str(",\n");
        render_map(&mut out, "histograms", self.registry.histograms(), |out, h| {
            render_histogram(out, h);
        });
        out.push_str("\n}\n");
        out
    }
}

/// Renders one `"name": { "k": v, ... }` sub-object with its entries on
/// separate lines, or `"name": {}` when empty.
fn render_map<V>(
    out: &mut String,
    name: &str,
    entries: impl Iterator<Item = (&'static str, V)>,
    mut render: impl FnMut(&mut String, V),
) {
    let entries: Vec<(&'static str, V)> = entries.collect();
    if entries.is_empty() {
        let _ = write!(out, "  \"{name}\": {{}}");
        return;
    }
    let _ = writeln!(out, "  \"{name}\": {{");
    let n = entries.len();
    for (i, (key, value)) in entries.into_iter().enumerate() {
        let _ = write!(out, "    {}: ", json_str(key));
        render(out, value);
        out.push_str(if i + 1 < n { ",\n" } else { "\n" });
    }
    out.push_str("  }");
}

fn render_histogram(out: &mut String, h: &Histogram) {
    let _ = write!(
        out,
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p99\": {}}}",
        h.count(),
        json_f64(h.sum()),
        json_f64(h.min()),
        json_f64(h.max()),
        json_f64(h.quantile(0.5)),
        json_f64(h.quantile(0.99)),
    );
}

/// JSON number rendering for `f64`: Rust's shortest round-trip `Display`
/// (deterministic), with non-finite values mapped to `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> QueryReport {
        let mut rec = QueryRecorder::new();
        rec.record_span(Phase::CacheLookup, Duration::from_nanos(100));
        rec.record_span(Phase::Fetch, Duration::from_nanos(4_000));
        rec.record_span(Phase::Fetch, Duration::from_nanos(1_000)); // accumulates
        rec.add_counter("cache.hits", 1);
        rec.add_counter("fetch.points_read", 42);
        rec.set_gauge("lanes.fetch", 4.0);
        rec.observe_value("fetch.latency_ns", 2_500.0);
        rec.into_report()
    }

    #[test]
    fn recorder_captures_spans_and_metrics() {
        let r = sample_report();
        assert_eq!(r.phase_ns(Phase::CacheLookup), 100);
        assert_eq!(r.phase_ns(Phase::Fetch), 5_000);
        assert_eq!(r.phase_ns(Phase::Skyline), 0);
        assert_eq!(r.total_ns(), 5_100);
        assert_eq!(r.counter("cache.hits"), 1);
        assert_eq!(r.counter("fetch.points_read"), 42);
        assert_eq!(r.gauge("lanes.fetch"), Some(4.0));
        assert_eq!(r.registry().histogram("fetch.latency_ns").unwrap().count(), 1);
    }

    #[test]
    fn merge_accumulates_reports() {
        let mut a = sample_report();
        let b = sample_report();
        a.merge(&b);
        assert_eq!(a.phase_ns(Phase::Fetch), 10_000);
        assert_eq!(a.counter("fetch.points_read"), 84);
        assert_eq!(a.registry().histogram("fetch.latency_ns").unwrap().count(), 2);
    }

    #[test]
    fn json_has_schema_and_all_phases() {
        let json = sample_report().to_json();
        assert!(json.starts_with("{\n  \"schema\": \"skyobs-report/1\",\n"));
        for phase in Phase::ALL {
            assert!(json.contains(&format!("\"{}\"", phase.label())), "missing {phase:?}");
        }
        assert!(json.contains("\"cache.hits\": 1"));
        assert!(json.contains("\"lanes.fetch\": 4"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn json_of_equal_reports_is_byte_identical() {
        assert_eq!(sample_report().to_json(), sample_report().to_json());
    }

    #[test]
    fn empty_report_serializes_empty_maps() {
        let json = QueryRecorder::new().into_report().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"gauges\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.25), "1.25");
        assert_eq!(json_f64(123.0), "123");
    }
}
