//! Observability for the skycache query pipeline: spans, metrics and
//! per-query reports.
//!
//! The paper's claims are quantitative — cache hit ratios, points fetched
//! from disk, range queries issued by the (a)MPR — and its evaluation
//! slices latency per pipeline stage (Figure 10). This crate gives every
//! executor the instruments to report those numbers without paying for
//! them when nobody is looking:
//!
//! * [`Recorder`] — the observation interface threaded through the
//!   engine, cache and storage layers. Every method has a no-op default
//!   body, so the disabled path costs one virtual call and allocates
//!   nothing ([`NoopRecorder`] is the zero-sized witness). Recorders are
//!   **observation-only** by contract: query results must be identical
//!   with recording on and off (the differential test in
//!   `tests/observability.rs` pins this).
//! * [`Phase`] — the six spans of one constrained-skyline query:
//!   cache-lookup, case-analysis, mpr-compute, fetch, merge, skyline.
//!   Span wall time comes from the engine's sanctioned clock
//!   (`skycache_core::clock::Stopwatch`); this crate only stores
//!   durations it is handed.
//! * [`Registry`] — deterministic metric storage: counters, gauges and
//!   power-of-two-bucket [`Histogram`]s keyed by the `&'static str`
//!   names of [`names`].
//! * [`QueryRecorder`] / [`QueryReport`] — a recorder capturing one
//!   query, and its versioned JSON rendering (`"skyobs-report/1"`, same
//!   hand-rolled style as skylint's `skylint-report/2`).
//!
//! Hot-path rule: designated kernels (`ParallelDc::compute`, the storage
//! fetch lanes) never call a [`Recorder`]; they return their counts by
//! value and the engine layer records them. skylint's `hot-path-alloc`
//! rule enforces this (`rules.hot-path-alloc.recorder-idents`).

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(rust_2018_idioms)]

/// Metric registry: counters, gauges, log-bucket histograms.
pub mod metrics;
/// Canonical metric names shared by producers and consumers.
pub mod names;
/// The [`Recorder`] trait, phases and the no-op recorder.
pub mod recorder;
/// Per-query capture and the versioned JSON report.
pub mod report;

pub use metrics::{Histogram, Registry};
pub use recorder::{NoopRecorder, Phase, Recorder};
pub use report::{QueryRecorder, QueryReport, REPORT_SCHEMA};
