//! The observation interface: query phases and the [`Recorder`] trait.

use std::time::Duration;

/// The six spans of one constrained-skyline query, in pipeline order.
///
/// `CacheLookup`, `CaseAnalysis` and `MprCompute` together are the
/// paper's *processing* stage (Figure 10); `Fetch` is its *fetching*
/// stage; `Merge` and `Skyline` together are its *skyline* stage. The
/// finer split is what Figure 10 could not show: where processing time
/// actually goes inside CBCS.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// R\*-tree cache search plus the bounding-box short-circuit.
    CacheLookup,
    /// Strategy selection and overlap-case classification.
    CaseAnalysis,
    /// (Approximate) Missing Points Region construction.
    MprCompute,
    /// Reading the plan's regions from storage (measured wall time plus
    /// the cost model's simulated I/O latency).
    Fetch,
    /// Merging retained cached points with fetched rows (dedup).
    Merge,
    /// The in-memory skyline computation.
    Skyline,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 6;

    /// All phases in pipeline order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::CacheLookup,
        Phase::CaseAnalysis,
        Phase::MprCompute,
        Phase::Fetch,
        Phase::Merge,
        Phase::Skyline,
    ];

    /// Stable kebab-case label (used as the JSON key).
    pub fn label(self) -> &'static str {
        match self {
            Phase::CacheLookup => "cache-lookup",
            Phase::CaseAnalysis => "case-analysis",
            Phase::MprCompute => "mpr-compute",
            Phase::Fetch => "fetch",
            Phase::Merge => "merge",
            Phase::Skyline => "skyline",
        }
    }

    /// Dense index into per-phase arrays (pipeline order).
    pub fn index(self) -> usize {
        match self {
            Phase::CacheLookup => 0,
            Phase::CaseAnalysis => 1,
            Phase::MprCompute => 2,
            Phase::Fetch => 3,
            Phase::Merge => 4,
            Phase::Skyline => 5,
        }
    }
}

/// Observation sink for the query pipeline.
///
/// Every method defaults to a no-op, so instrumented code runs unchanged
/// against a [`NoopRecorder`] and the compiler sees straight-line code
/// with one virtual call per event. Implementations must be
/// **observation-only**: nothing an executor computes may depend on what
/// a recorder does with the events.
pub trait Recorder {
    /// Whether this recorder wants *derived* metrics that cost extra
    /// work to produce (e.g. distinct heap pages touched by a fetch).
    /// Producers must guard such computations behind this flag so the
    /// disabled path stays free.
    fn detailed(&self) -> bool {
        false
    }

    /// Records the wall time of one phase. Phases may be recorded more
    /// than once per query (times accumulate).
    fn record_span(&mut self, phase: Phase, elapsed: Duration) {
        let _ = (phase, elapsed);
    }

    /// Adds to a monotone counter (see [`crate::names`]).
    fn add_counter(&mut self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets a point-in-time gauge value.
    fn set_gauge(&mut self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Adds one sample to a distribution (histogram).
    fn observe_value(&mut self, name: &'static str, value: f64) {
        let _ = (name, value);
    }
}

/// The zero-cost recorder: every event is dropped.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Forwards every event to two recorders (e.g. the engine's legacy
/// `QueryStats` mirror plus a [`crate::QueryRecorder`]).
pub struct Tee<'a> {
    first: &'a mut dyn Recorder,
    second: &'a mut dyn Recorder,
}

impl<'a> Tee<'a> {
    /// Builds a tee over two recorders.
    pub fn new(first: &'a mut dyn Recorder, second: &'a mut dyn Recorder) -> Self {
        Tee { first, second }
    }
}

impl Recorder for Tee<'_> {
    fn detailed(&self) -> bool {
        self.first.detailed() || self.second.detailed()
    }

    fn record_span(&mut self, phase: Phase, elapsed: Duration) {
        self.first.record_span(phase, elapsed);
        self.second.record_span(phase, elapsed);
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        self.first.add_counter(name, delta);
        self.second.add_counter(name, delta);
    }

    fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.first.set_gauge(name, value);
        self.second.set_gauge(name, value);
    }

    fn observe_value(&mut self, name: &'static str, value: f64) {
        self.first.observe_value(name, value);
        self.second.observe_value(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_and_indexes_are_dense_and_ordered() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            ["cache-lookup", "case-analysis", "mpr-compute", "fetch", "merge", "skyline"]
        );
    }

    #[test]
    fn noop_recorder_accepts_everything() {
        let mut r = NoopRecorder;
        assert!(!r.detailed());
        r.record_span(Phase::Fetch, Duration::from_nanos(5));
        r.add_counter("cache.hits", 1);
        r.set_gauge("lanes.fetch", 4.0);
        r.observe_value("fetch.latency_ns", 123.0);
    }

    #[test]
    fn tee_forwards_to_both() {
        use crate::QueryRecorder;
        let mut a = QueryRecorder::new();
        let mut b = QueryRecorder::new();
        {
            let mut tee = Tee::new(&mut a, &mut b);
            assert!(tee.detailed());
            tee.add_counter("cache.hits", 2);
            tee.record_span(Phase::Skyline, Duration::from_nanos(7));
        }
        for rec in [a, b] {
            let report = rec.into_report();
            assert_eq!(report.counter("cache.hits"), 2);
            assert_eq!(report.phase_ns(Phase::Skyline), 7);
        }
    }
}
