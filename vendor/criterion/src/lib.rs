//! Offline API-compatible subset of `criterion` (0.5 surface).
//!
//! Benches compile and run against the same API (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! the group/main macros), but measurement is simplified: each benchmark
//! does one warm-up pass then `sample_size` timed iterations and prints
//! mean and min wall-clock per iteration as plain text. There is no
//! statistical analysis, HTML report, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point handed to each benchmark function by the macros.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 100 }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name.to_owned(), f);
        group.finish();
        self
    }
}

/// A named benchmark group; owns the sample-size setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { sample_size: self.sample_size, samples: Vec::new() };
        f(&mut bencher);
        report(&self.name, &id.0, &bencher.samples);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher { sample_size: self.sample_size, samples: Vec::new() };
        f(&mut bencher, input);
        report(&self.name, &id.0, &bencher.samples);
        self
    }

    /// Ends the group (reporting happens per-benchmark; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId(name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_owned())
    }
}

/// Timing harness passed to the benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    let label = if group.is_empty() { id.to_owned() } else { format!("{group}/{id}") };
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<48} mean {:>12} min {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group function, as upstream `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups, as upstream `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 5 samples.
        assert_eq!(runs, 6);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("algo", 128).0, "algo/128");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.500 ms");
    }
}
