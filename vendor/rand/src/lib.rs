//! Offline API-compatible subset of the `rand` crate (0.8 surface).
//!
//! Provides the pieces this workspace uses: [`Rng::gen_range`] /
//! [`Rng::gen_bool`] over integer and float ranges, [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`] backed by xoshiro256++ (seeded
//! via SplitMix64). Deterministic per seed; the stream is *not*
//! bit-compatible with upstream `StdRng`, which nothing here relies on.

use std::ops::{Range, RangeInclusive};

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the conventional
    /// construction) and builds the generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander and fallback generator.
#[derive(Clone, Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Samples an integer in `[lo, lo + span)` (`span > 0`, `span <= 2^64`).
fn sample_int<R: RngCore + ?Sized>(rng: &mut R, lo: i128, span: u128) -> i128 {
    debug_assert!(span > 0);
    lo + (rng.next_u64() as u128 % span) as i128
}

/// Types uniformly samplable from a range.
///
/// The [`SampleRange`] impls are generic over this trait (as upstream is
/// over `SampleUniform`) so that type inference can unify `gen_range`'s
/// output type with a range literal's element type.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Draws a sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                sample_int(rng, lo as i128, span) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                sample_int(rng, lo as i128, span) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let v = lo + (hi - lo) * (unit_f64(rng) as $t);
                // Guard the (measure-zero) case where rounding lands on `hi`.
                if v < hi { v } else { lo }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                lo + (hi - lo) * (unit_f64(rng) as $t)
            }
        }
    )*};
}

impl_float_sample_uniform!(f32, f64);

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic per seed. Not bit-compatible with upstream
    /// `rand::rngs::StdRng` (which nothing in this workspace requires).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result =
                (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // The all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=10usize);
            assert!((1..=10).contains(&w));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let neg = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_roughly_matches_p() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(13);
        let mean: f64 = (0..20_000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
