//! Offline API-compatible subset of `parking_lot` (0.12 surface).
//!
//! Non-poisoning [`RwLock`] and [`Mutex`] wrappers over `std::sync`:
//! the parking_lot API (`read()`/`write()`/`lock()` returning guards
//! directly) with poisoning resolved by ignoring it, matching
//! parking_lot's semantics of never poisoning.

use std::fmt;
use std::sync::PoisonError;

/// Read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock with the parking_lot API (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// A mutual-exclusion lock with the parking_lot API (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() = 7;
        assert_eq!(*lock.read(), 7);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let lock = Arc::new(RwLock::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *lock.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*lock.read(), 4000);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }
}
