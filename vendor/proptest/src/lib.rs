//! Offline API-compatible subset of `proptest` (1.x surface).
//!
//! Supports the workspace's property tests: the [`proptest!`] macro with
//! optional `#![proptest_config(...)]`, `ident in strategy` bindings,
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`]/[`prop_oneof!`],
//! and a [`strategy::Strategy`] trait with `prop_map`/`prop_filter`/
//! `boxed`, integer/float range strategies, tuples, [`strategy::Just`],
//! [`arbitrary::any`], and [`collection::vec`].
//!
//! By design this is *random testing only*: failing cases report the
//! failing assertion (deterministically reproducible — the RNG is seeded
//! from the test name) but are **not shrunk** to minimal inputs.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// Max consecutive rejections tolerated by [`Strategy::prop_filter`].
    const MAX_FILTER_ATTEMPTS: u32 = 1_000;

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Rejects values failing `pred`, retrying generation.
        fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { source: self, whence: whence.into(), pred }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.gen_value(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        whence: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_FILTER_ATTEMPTS {
                let value = self.source.gen_value(rng);
                if (self.pred)(&value) {
                    return value;
                }
            }
            panic!("prop_filter {:?} rejected {MAX_FILTER_ATTEMPTS} values in a row", self.whence);
        }
    }

    trait ValueGen<T> {
        fn gen_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ValueGen<S::Value> for S {
        fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.gen_value(rng)
        }
    }

    /// A type-erased strategy, as returned by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Rc<dyn ValueGen<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_dyn(rng)
        }
    }

    /// Uniform choice among boxed alternatives (backs [`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.inner.gen_range(0..self.options.len());
            self.options[idx].gen_value(rng)
        }
    }

    impl<T> Strategy for Range<T>
    where
        Range<T>: Clone + rand::SampleRange<T>,
    {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            rng.inner.gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: Clone + rand::SampleRange<T>,
    {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            rng.inner.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident.$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Marker for [`crate::arbitrary::any`], parameterized on the output
    /// type.
    pub struct Any<T>(pub(crate) PhantomData<T>);
}

pub mod arbitrary {
    //! Default strategies per type ([`any`]).

    use std::marker::PhantomData;

    use crate::strategy::{Any, Strategy};
    use crate::test_runner::TestRng;
    use rand::RngCore as _;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `A`: uniform over its whole domain.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn gen_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.inner.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.inner.next_u64() as $t
                }
            }
        )*};
    }

    impl_int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies ([`vec`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// A length specification: exact, half-open, or inclusive.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.inner.gen_range(self.lo..=self.hi_inclusive)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Config, RNG, and per-case result types used by the macros.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Default config with a custom case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// RNG handed to strategies; deterministic per test name.
    pub struct TestRng {
        pub(crate) inner: StdRng,
    }

    impl TestRng {
        /// Seeds the RNG from a test's name so each test is
        /// deterministic and distinct.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name: stable, no hasher state dependency.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { inner: StdRng::seed_from_u64(hash) }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl From<String> for TestCaseError {
        fn from(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl From<&str> for TestCaseError {
        fn from(msg: &str) -> Self {
            TestCaseError(msg.to_owned())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod prelude {
    //! One-stop import: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec`, ...).

        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Internal: expands each test item in a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);
                )+
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                if let Err(err) = outcome {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not the whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::from(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::from(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::from(format!(
                "assertion `left == right` failed\n  left: {left:?}\n right: {right:?}"
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::from(format!(
                "assertion `left == right` failed: {}\n  left: {left:?}\n right: {right:?}",
                format!($($fmt)+)
            )));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Tag {
        A,
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0..10u8, pair in (0..5u8, 0..=4u8)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 5 && pair.1 <= 4);
        }

        #[test]
        fn vec_and_map(
            xs in prop::collection::vec((0..=10u8).prop_map(f64::from), 1..20),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|v| (0.0..=10.0).contains(v)));
        }

        #[test]
        fn oneof_and_filter(
            tag in prop_oneof![Just(Tag::A), Just(Tag::B)],
            n in (0..100u32).prop_filter("even", |n| n % 2 == 0),
        ) {
            prop_assert!(tag == Tag::A || tag == Tag::B);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn assume_skips(n in 0..100u32) {
            prop_assume!(n < 50);
            prop_assert!(n < 50);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = prop::collection::vec(0..1000u32, 5);
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        assert_eq!(strat.gen_value(&mut a), strat.gen_value(&mut b));
    }
}
