//! Offline API-compatible subset of the `bytes` crate (1.x surface).
//!
//! [`BytesMut`] is a growable byte buffer implementing [`BufMut`];
//! [`Bytes`] is an owned buffer with a read cursor implementing [`Buf`].
//! Only the little-endian get/put accessors this workspace uses are
//! provided.

use std::ops::{Deref, DerefMut};

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Growable byte buffer (write side).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Owned immutable byte buffer with a read cursor (read side).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `src` into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes { data: src.to_vec(), pos: 0 }
    }

    /// Total length including already-read bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer was created empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_values() {
        let mut w = BytesMut::with_capacity(64);
        w.put_slice(b"MAGI");
        w.put_u8(0xAB);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f64_le(-1234.5678);
        assert_eq!(w.len(), 4 + 1 + 4 + 8 + 8);

        let mut r = Bytes::copy_from_slice(&w);
        assert_eq!(r.remaining(), w.len());
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"MAGI");
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64_le(), -1234.5678);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn freeze_preserves_contents() {
        let mut w = BytesMut::new();
        w.put_u32_le(7);
        let mut r = w.freeze();
        assert_eq!(r.get_u32_le(), 7);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r = Bytes::copy_from_slice(&[1, 2]);
        let _ = r.get_u32_le();
    }
}
