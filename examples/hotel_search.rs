//! The paper's running example: searching for hotels that are cheap *and*
//! near the conference venue, refining constraints interactively.
//!
//! Demonstrates the four incremental overlap cases of Section 4 on a 2-D
//! dataset where the skylines are small enough to print.
//!
//! Run with: `cargo run --release --example hotel_search`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skycache::core::{CbcsConfig, CbcsExecutor, Executor, MprMode, QueryRequest, SearchStrategy};
use skycache::geom::{Constraints, Point};
use skycache::storage::{Table, TableConfig};

/// Generates hotels: (distance to venue in km, price per night in EUR).
/// Price loosely falls with distance, with plenty of noise — so the
/// skyline contains genuine trade-offs.
fn hotels(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let dist: f64 = rng.gen_range(0.1..15.0);
            let base = 260.0 - 11.0 * dist;
            let price = (base * rng.gen_range(0.55..1.65)).clamp(35.0, 420.0);
            Point::from(vec![dist, price])
        })
        .collect()
}

fn show(skyline: &[Point]) -> String {
    let mut sky: Vec<&Point> = skyline.iter().collect();
    sky.sort_by(|a, b| a[0].partial_cmp(&b[0]).expect("NaN-free"));
    let head: Vec<String> =
        sky.iter().take(10).map(|p| format!("({:.1}km, {:.0}€)", p[0], p[1])).collect();
    if sky.len() > 10 {
        format!("{} … and {} more", head.join(" "), sky.len() - 10)
    } else {
        head.join(" ")
    }
}

fn main() {
    let table = Table::build(hotels(50_000, 7), TableConfig::default()).expect("valid data");
    let mut engine = CbcsExecutor::new(
        &table,
        // Prioritized1D favours the simple single-bound cases, so the
        // session below exercises exactly the four cases of Section 4.
        CbcsConfig {
            mpr: MprMode::Exact,
            strategy: SearchStrategy::Prioritized1D,
            ..Default::default()
        },
    );

    // A conference attendee's refinement session. Dimensions:
    // 0 = distance (km), 1 = price (EUR). Both minimized.
    let steps: [(&str, [(f64, f64); 2]); 5] = [
        ("initial search: ≤8km, 60–200€", [(0.0, 8.0), (60.0, 200.0)]),
        ("price cap up to 240€ (case c: upper increased)", [(0.0, 8.0), (60.0, 240.0)]),
        ("budget floor removed (case a: lower decreased)", [(0.0, 8.0), (0.0, 240.0)]),
        ("closer hotels only, ≤5km (case b: upper decreased)", [(0.0, 5.0), (0.0, 240.0)]),
        ("skip the hostel strip <1km (case d: lower increased)", [(1.0, 5.0), (0.0, 240.0)]),
    ];

    for (label, pairs) in steps {
        let c = Constraints::from_pairs(&pairs).expect("valid constraints");
        let r = engine.execute(&QueryRequest::new(c.clone())).expect("query succeeds");
        println!("» {label}");
        println!(
            "  case={:<16} points read={:<6} range queries={:<3} skyline size={}",
            r.stats.case.map_or("miss (first query)".into(), |c| c.label().to_string()),
            r.stats.points_read,
            r.stats.range_queries_issued,
            r.skyline.len(),
        );
        println!("  skyline: {}\n", show(&r.skyline));
    }
}
