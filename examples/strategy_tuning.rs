//! Compare the seven cache search strategies of Section 6.1 on the same
//! workload — the scenario behind the paper's Figure 11.
//!
//! Run with: `cargo run --release --example strategy_tuning`

use skycache::core::{CbcsConfig, CbcsExecutor, Executor, MprMode, QueryRequest, SearchStrategy};
use skycache::datagen::{DimStats, Distribution, InteractiveWorkload, SyntheticGen};
use skycache::storage::{Table, TableConfig};

fn main() {
    println!("building table (150k independent points, 5 dimensions)...");
    let points = SyntheticGen::new(Distribution::Independent, 5, 3).generate(150_000);
    let table = Table::build(points, TableConfig::default()).expect("valid data");
    let stats = DimStats::compute(table.all_points());
    let workload = InteractiveWorkload::new(stats).generate(150, 17);

    let strategies = [
        SearchStrategy::Random,
        SearchStrategy::MaxOverlap,
        SearchStrategy::MaxOverlapSP,
        SearchStrategy::Prioritized1D,
        SearchStrategy::prioritized_nd_std(),
        SearchStrategy::prioritized_nd_bad(),
        SearchStrategy::OptimumDistance,
    ];

    println!(
        "\n{:<20} {:>10} {:>12} {:>12} {:>10}",
        "strategy", "avg time", "avg pts read", "avg queries", "unstable%"
    );
    for strategy in strategies {
        let label = strategy.label();
        let config =
            CbcsConfig { mpr: MprMode::Approximate { k: 1 }, strategy, ..Default::default() };
        let mut engine = CbcsExecutor::new(&table, config);
        let (mut time, mut pts, mut rq, mut unstable, mut hits) = (0.0, 0u64, 0u64, 0u64, 0u64);
        for q in workload.queries() {
            let r =
                engine.execute(&QueryRequest::new(q.constraints.clone())).expect("query succeeds");
            time += r.stats.stages.total().as_secs_f64();
            pts += r.stats.points_read;
            rq += r.stats.range_queries_issued;
            if r.stats.stable() == Some(false) {
                unstable += 1;
            }
            if r.stats.cache_hit {
                hits += 1;
            }
        }
        let n = workload.len() as f64;
        println!(
            "{:<20} {:>8.1}ms {:>12.0} {:>12.1} {:>9.0}%",
            label,
            time / n * 1e3,
            pts as f64 / n,
            rq as f64 / n,
            unstable as f64 / hits.max(1) as f64 * 100.0,
        );
    }
    println!("\n(lower time and fewer points read are better; compare PrioritizednD Std vs Bad)");
}
