//! Dynamic data and multi-user caching — the paper's Section 6.2
//! deployment scenarios, implemented by this library as extensions.
//!
//! Part 1: a [`DynamicCbcsExecutor`] owns its table; inserting and
//! deleting listings maintains cached skylines incrementally ("each cache
//! item as a separate dataset with a continuous skyline query").
//!
//! Part 2: several user sessions share one [`Service`] — the second
//! user's query hits the first user's cached result.
//!
//! Run with: `cargo run --release --example live_updates`

use skycache::core::{
    CbcsConfig, DynamicCbcsExecutor, Executor, QueryRequest, Service, ServiceConfig,
};
use skycache::datagen::{Distribution, SyntheticGen};
use skycache::geom::{Constraints, Point};
use skycache::storage::{Table, TableConfig};

fn main() {
    // -------- Part 1: live updates ------------------------------------
    println!("== dynamic data (Section 6.2) ==");
    let points = SyntheticGen::new(Distribution::Independent, 2, 11).generate(50_000);
    let table = Table::build(points, TableConfig::default()).expect("valid data");
    let mut engine = DynamicCbcsExecutor::new(table, CbcsConfig::default());

    let c = Constraints::from_pairs(&[(0.2, 0.7), (0.2, 0.7)]).expect("valid");
    let r1 = engine.execute(&QueryRequest::new(c.clone())).expect("query succeeds");
    println!("initial skyline: {} points (cache miss)", r1.skyline.len());

    // A hot new listing lands at the cached region's best corner — it
    // dominates everything there and must take over the cached skyline.
    let hot = Point::from(vec![0.2, 0.2]);
    engine.insert(hot.clone()).expect("insert succeeds");
    let r2 = engine.execute(&QueryRequest::new(c.clone())).expect("query succeeds");
    println!(
        "after insert:    {} points (cache hit: {}, includes new listing: {})",
        r2.skyline.len(),
        r2.stats.cache_hit,
        r2.skyline.contains(&hot),
    );

    // The listing is sold (deleted): its cached items are invalidated and
    // the next query recomputes, then re-caches.
    let row = engine
        .table()
        .live_points()
        .find(|(_, p)| **p == hot)
        .map(|(row, _)| row)
        .expect("just inserted");
    engine.delete(row).expect("delete succeeds");
    let r3 = engine.execute(&QueryRequest::new(c.clone())).expect("query succeeds");
    println!(
        "after delete:    {} points (gone again: {})\n",
        r3.skyline.len(),
        !r3.skyline.contains(&hot),
    );

    // -------- Part 2: multi-user shared cache --------------------------
    println!("== multi-user shared cache ==");
    let points = SyntheticGen::new(Distribution::Independent, 3, 13).generate(100_000);
    let table = Table::build(points, TableConfig::default()).expect("valid data");
    let service = Service::open(&table, ServiceConfig::default());

    let mut alice = service.session();
    let mut bob = service.session();

    let c = Constraints::from_pairs(&[(0.1, 0.6); 3]).expect("valid");
    let ra = alice.execute(&QueryRequest::new(c.clone())).expect("query succeeds");
    println!(
        "alice: {:>6} points read ({})",
        ra.stats.points_read,
        if ra.stats.cache_hit { "hit" } else { "miss" }
    );

    // Bob refines Alice's query and benefits from her cached result.
    let c2 = Constraints::from_pairs(&[(0.1, 0.65), (0.1, 0.6), (0.1, 0.6)]).expect("valid");
    let rb = bob.execute(&QueryRequest::new(c2.clone())).expect("query succeeds");
    println!(
        "bob:   {:>6} points read ({}, case {})",
        rb.stats.points_read,
        if rb.stats.cache_hit { "hit" } else { "miss" },
        rb.stats.case.map_or("-", |c| c.label()),
    );
    println!("shared cache now holds {} items", service.cache().len());
    assert!(rb.stats.points_read < ra.stats.points_read / 4);
}
