//! Multi-user property search over the synthetic Danish-style real-estate
//! dataset (the paper's Section 7.5 scenario): a preloaded cache answers
//! independent queries from many users.
//!
//! Run with: `cargo run --release --example real_estate`

use skycache::core::{
    BaselineExecutor, BbsExecutor, CbcsConfig, CbcsExecutor, Executor, MprMode, QueryRequest,
    SearchStrategy,
};
use skycache::datagen::{DimStats, IndependentWorkload, RealEstateGen};
use skycache::storage::{Table, TableConfig};

fn main() {
    // 200k properties: (-year, -sqm, valuation, price), all minimized —
    // i.e. the skyline prefers new, large, cheap, low-valuation homes.
    println!("generating properties (200k records, 4 dimensions)...");
    let records = RealEstateGen::new(2005).generate(200_000);
    let table = Table::build(records, TableConfig::default()).expect("valid data");
    let stats = DimStats::compute(table.all_points());

    // Preload the cache with earlier users' queries.
    let preload = IndependentWorkload::new(stats.clone()).generate(300, 1);
    let config = CbcsConfig {
        mpr: MprMode::Approximate { k: 5 },
        strategy: SearchStrategy::prioritized_nd_std(),
        ..Default::default()
    };
    let mut cbcs = CbcsExecutor::new(&table, config);
    println!("preloading cache with {} queries...", preload.len());
    for q in preload.queries() {
        cbcs.execute(&QueryRequest::new(q.constraints.clone())).expect("preload query succeeds");
    }

    // Fresh users arrive.
    let incoming = IndependentWorkload::new(stats).generate(25, 99);
    let mut baseline = BaselineExecutor::new(&table);
    println!("building BBS R-tree...");
    let mut bbs = BbsExecutor::new(&table);

    let mut totals = [0.0f64; 3];
    println!(
        "\n{:<5} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "user", "|skyline|", "CBCS", "Baseline", "BBS", "hit"
    );
    for (i, q) in incoming.queries().iter().enumerate() {
        let r_c = cbcs.execute(&QueryRequest::new(q.constraints.clone())).expect("query succeeds");
        let r_b =
            baseline.execute(&QueryRequest::new(q.constraints.clone())).expect("query succeeds");
        let r_s = bbs.execute(&QueryRequest::new(q.constraints.clone())).expect("query succeeds");
        assert_eq!(r_c.skyline.len(), r_b.skyline.len(), "executors must agree");
        assert_eq!(r_s.skyline.len(), r_b.skyline.len(), "executors must agree");
        let t = [
            r_c.stats.stages.total().as_secs_f64(),
            r_b.stats.stages.total().as_secs_f64(),
            r_s.stats.stages.total().as_secs_f64(),
        ];
        for (acc, v) in totals.iter_mut().zip(t) {
            *acc += v;
        }
        println!(
            "{:<5} {:>10} {:>10.0}ms {:>10.0}ms {:>10.0}ms {:>8}",
            i,
            r_c.skyline.len(),
            t[0] * 1e3,
            t[1] * 1e3,
            t[2] * 1e3,
            if r_c.stats.cache_hit { "yes" } else { "no" },
        );
    }
    println!(
        "\naverages over {} users:  CBCS {:.0}ms   Baseline {:.0}ms   BBS {:.0}ms",
        incoming.len(),
        totals[0] / incoming.len() as f64 * 1e3,
        totals[1] / incoming.len() as f64 * 1e3,
        totals[2] / incoming.len() as f64 * 1e3,
    );
    println!("(times include the deterministic simulated I/O latency — see DESIGN.md)");
}
