//! Quickstart: load a dataset, pose a string of refined constrained
//! skyline queries, and watch the cache take over.
//!
//! Run with: `cargo run --release --example quickstart`

use skycache::core::{BaselineExecutor, CbcsConfig, CbcsExecutor, Executor, QueryRequest};
use skycache::datagen::{Distribution, SyntheticGen};
use skycache::geom::Constraints;
use skycache::storage::{Table, TableConfig};

fn main() {
    // 100k independent 3-D points in [0,1]^3, stored in the paged table
    // with one index per dimension (the paper's PostgreSQL stand-in).
    println!("building table (100k points, 3 dimensions)...");
    let points = SyntheticGen::new(Distribution::Independent, 3, 42).generate(100_000);
    let table = Table::build(points, TableConfig::default()).expect("valid dataset");

    let mut cbcs = CbcsExecutor::new(&table, CbcsConfig::default());
    let mut baseline = BaselineExecutor::new(&table);

    // An exploratory session: a user refines one bound at a time.
    let session = [
        [(0.20, 0.60), (0.20, 0.60), (0.20, 0.60)], // initial query
        [(0.20, 0.66), (0.20, 0.60), (0.20, 0.60)], // widen dim 0 (case 3)
        [(0.20, 0.66), (0.15, 0.60), (0.20, 0.60)], // extend dim 1 down (case 1)
        [(0.20, 0.66), (0.15, 0.55), (0.20, 0.60)], // shrink dim 1 (case 2)
        [(0.20, 0.66), (0.15, 0.55), (0.26, 0.60)], // raise dim 2 lower (case 4)
    ];

    println!(
        "\n{:<4} {:>9} {:>14} {:>14} {:>10} {:>16}",
        "#", "|skyline|", "CBCS pts read", "Base pts read", "case", "CBCS total"
    );
    for (i, pairs) in session.iter().enumerate() {
        let c = Constraints::from_pairs(pairs).expect("valid constraints");
        let r = cbcs.execute(&QueryRequest::new(c.clone())).expect("query succeeds");
        let b = baseline.execute(&QueryRequest::new(c.clone())).expect("query succeeds");
        assert_eq!(r.skyline.len(), b.skyline.len(), "executors must agree");
        println!(
            "{:<4} {:>9} {:>14} {:>14} {:>10} {:>13.2?}",
            i,
            r.skyline.len(),
            r.stats.points_read,
            b.stats.points_read,
            r.stats.case.map_or("miss", |c| c.label()),
            r.stats.stages.total(),
        );
    }

    println!("\ncache now holds {} items", cbcs.cache().len());
    println!("(points read drop sharply once the cache warms up — that is the paper's effect)");
}
